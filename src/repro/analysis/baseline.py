"""Baseline files: grandfather existing findings without silencing new ones.

A baseline is a JSON document mapping finding fingerprints (path + code +
stripped source line, see :attr:`repro.analysis.findings.Finding.fingerprint`)
to occurrence counts.  ``idde lint --write-baseline`` snapshots the current
tree; subsequent runs subtract baselined occurrences so only *new* findings
fail the build.  Policy: the baseline may only ever shrink — new code must
lint clean (see ``docs/STATIC_ANALYSIS.md``).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from .findings import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME", "load_baseline", "write_baseline"]

DEFAULT_BASELINE_NAME = ".idde-lint-baseline.json"

_VERSION = 1


@dataclass
class Baseline:
    """Count-aware set of grandfathered finding fingerprints."""

    counts: Counter[str] = field(default_factory=Counter)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(counts=Counter(f.fingerprint for f in findings))

    def filter(self, findings: Iterable[Finding]) -> list[Finding]:
        """Drop findings covered by the baseline.

        Each baselined fingerprint absorbs up to its recorded count, so
        *adding* a second copy of a grandfathered violation still fails.
        """
        budget = Counter(self.counts)
        kept: list[Finding] = []
        for f in sorted(findings):
            if budget[f.fingerprint] > 0:
                budget[f.fingerprint] -= 1
            else:
                kept.append(f)
        return kept

    def __len__(self) -> int:
        return sum(self.counts.values())

    # ------------------------------------------------------------------
    # shrink-only policy
    # ------------------------------------------------------------------
    def stale_entries(self, findings: Iterable[Finding]) -> Counter[str]:
        """Fingerprint -> excess count no longer present in ``findings``.

        A baseline entry is *stale* when its recorded count exceeds the
        number of matching findings in the current tree: the violation was
        (at least partly) fixed, so the baseline must shrink to match.
        ``idde lint --check-baseline`` fails while any entry is stale;
        ``--prune-baseline`` clamps the counts.
        """
        current = Counter(f.fingerprint for f in findings)
        stale: Counter[str] = Counter()
        for fp, n in self.counts.items():
            excess = n - current.get(fp, 0)
            if excess > 0:
                stale[fp] = excess
        return stale

    def pruned(self, findings: Iterable[Finding]) -> "Baseline":
        """A copy with every count clamped to its current occurrence count
        (entries for fully fixed violations disappear).  Never grows."""
        current = Counter(f.fingerprint for f in findings)
        clamped = Counter(
            {fp: min(n, current[fp]) for fp, n in self.counts.items() if current[fp] > 0}
        )
        return Baseline(counts=clamped)

    # ------------------------------------------------------------------
    # (de)serialisation
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        entries = [
            {"fingerprint": fp, "count": n}
            for fp, n in sorted(self.counts.items())
            if n > 0
        ]
        return json.dumps({"version": _VERSION, "entries": entries}, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Baseline":
        doc = json.loads(text)
        if not isinstance(doc, dict) or doc.get("version") != _VERSION:
            raise ValueError(f"unsupported baseline document: {text[:80]!r}")
        counts: Counter[str] = Counter()
        for entry in doc.get("entries", []):
            counts[str(entry["fingerprint"])] += int(entry.get("count", 1))
        return cls(counts=counts)


def load_baseline(path: str | Path) -> Baseline:
    return Baseline.from_json(Path(path).read_text(encoding="utf-8"))


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> Baseline:
    baseline = Baseline.from_findings(findings)
    Path(path).write_text(baseline.to_json(), encoding="utf-8")
    return baseline
