"""Data-delivery latency model (Eq. 8 and the latency constraint).

``L_{k,o,i} = s_k · pathcost(o, i)`` where ``pathcost`` is the all-pairs
minimal seconds-per-MB cost over the edge graph.  The cloud holds every data
item (Eq. 7) at a path cost of ``1/cloud_speed`` seconds per MB; the latency
constraint of Eq. (8) is enforced by clamping every edge-to-edge path cost at
the cloud cost, so delivering from within the system never takes longer than
from the cloud.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from ..errors import TopologyError
from ..units import seconds_to_ms
from .graph import EdgeTopology
from .shortest_path import all_pairs_path_cost

__all__ = ["DeliveryLatencyModel"]


class DeliveryLatencyModel:
    """Per-MB path costs between servers and to the cloud.

    Parameters
    ----------
    topology:
        The edge-server graph.
    enforce_latency_constraint:
        When True (default, per Eq. 8), edge-to-edge path costs are capped
        at the cloud cost; an unreachable pair therefore costs exactly the
        cloud fetch.
    """

    def __init__(self, topology: EdgeTopology, *, enforce_latency_constraint: bool = True):
        self.topology = topology
        self.enforce_latency_constraint = enforce_latency_constraint

    @cached_property
    def cloud_cost(self) -> float:
        """Seconds per MB for a cloud fetch."""
        return 1.0 / self.topology.cloud_speed

    @cached_property
    def path_cost(self) -> np.ndarray:
        """``(N, N)`` minimal seconds-per-MB cost between servers.

        With the latency constraint enforced, entries never exceed
        :attr:`cloud_cost` and the matrix contains no infinities.
        """
        cost = all_pairs_path_cost(self.topology.adjacency_cost)
        if self.enforce_latency_constraint:
            cost = np.minimum(cost, self.cloud_cost)
        cost.setflags(write=False)
        return cost

    # ------------------------------------------------------------------
    # latencies (seconds)
    # ------------------------------------------------------------------
    def transfer_latency(self, size_mb: float, origin: int, dest: int) -> float:
        """``L_{k,o,i}`` in seconds for an item of ``size_mb`` MB."""
        self._check(origin)
        self._check(dest)
        if size_mb < 0:
            raise TopologyError(f"negative data size {size_mb}")
        return float(size_mb * self.path_cost[origin, dest])

    def cloud_latency(self, size_mb: float) -> float:
        """Latency in seconds for fetching ``size_mb`` MB from the cloud."""
        if size_mb < 0:
            raise TopologyError(f"negative data size {size_mb}")
        return float(size_mb * self.cloud_cost)

    def latency_matrix(self, size_mb: float) -> np.ndarray:
        """``(N, N)`` seconds to move an item of ``size_mb`` between servers."""
        return size_mb * self.path_cost

    # ------------------------------------------------------------------
    # reporting helpers (milliseconds)
    # ------------------------------------------------------------------
    def transfer_latency_ms(self, size_mb: float, origin: int, dest: int) -> float:
        return seconds_to_ms(self.transfer_latency(size_mb, origin, dest))

    def cloud_latency_ms(self, size_mb: float) -> float:
        return seconds_to_ms(self.cloud_latency(size_mb))

    def _check(self, i: int) -> None:
        if not (0 <= i < self.topology.n):
            raise TopologyError(f"server index {i} out of range [0, {self.topology.n})")
