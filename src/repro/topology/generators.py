"""Structured topology families beyond the paper's random graphs.

The paper generates ``density·N`` uniformly random links (Section 4.3).
Real edge deployments are often engineered; these generators provide the
standard families used in the robustness bench:

* :func:`ring_topology` — a cycle (the classic metro-ring backhaul);
* :func:`grid_topology` — a 2-D lattice (street-grid fibre);
* :func:`star_topology` — a hub-and-spoke aggregation site;
* :func:`scale_free_topology` — Barabási–Albert preferential attachment
  (organically grown networks with hub structure);
* :func:`geometric_topology` — links between servers within a wiring
  radius (cost-realistic: fibre follows proximity).

All return :class:`~repro.topology.graph.EdgeTopology` with speeds drawn
from the configured range, so every downstream component works unchanged.
"""

from __future__ import annotations

import numpy as np

from ..config import TopologyConfig
from ..errors import TopologyError
from ..geometry import pairwise_distances
from ..rng import ensure_rng
from .graph import EdgeTopology

__all__ = [
    "ring_topology",
    "grid_topology",
    "star_topology",
    "scale_free_topology",
    "geometric_topology",
]


def _speeds(n_links: int, rng: np.random.Generator, cfg: TopologyConfig) -> np.ndarray:
    lo, hi = cfg.edge_speed_range
    return rng.uniform(lo, hi, size=n_links)


def _build(
    n: int, links: list[tuple[int, int]], rng: np.random.Generator, cfg: TopologyConfig
) -> EdgeTopology:
    canon = sorted({(min(a, b), max(a, b)) for a, b in links if a != b})
    arr = np.array(canon, dtype=np.int64).reshape(-1, 2)
    return EdgeTopology(
        n=n, links=arr, speeds=_speeds(len(arr), rng, cfg), cloud_speed=cfg.cloud_speed
    )


def ring_topology(
    n: int,
    rng: np.random.Generator | int | None = None,
    cfg: TopologyConfig | None = None,
) -> EdgeTopology:
    """A cycle over the servers (requires ``n >= 3``; ``n <= 2`` degrades
    to a path)."""
    if n <= 0:
        raise TopologyError(f"need at least one server, got n={n}")
    rng = ensure_rng(rng)
    cfg = cfg or TopologyConfig()
    links = [(i, (i + 1) % n) for i in range(n)] if n >= 3 else (
        [(0, 1)] if n == 2 else []
    )
    return _build(n, links, rng, cfg)


def grid_topology(
    n: int,
    rng: np.random.Generator | int | None = None,
    cfg: TopologyConfig | None = None,
) -> EdgeTopology:
    """A near-square 2-D lattice over the first ``n`` cells (row-major)."""
    if n <= 0:
        raise TopologyError(f"need at least one server, got n={n}")
    rng = ensure_rng(rng)
    cfg = cfg or TopologyConfig()
    cols = int(np.ceil(np.sqrt(n)))
    links: list[tuple[int, int]] = []
    for idx in range(n):
        r, c = divmod(idx, cols)
        right = idx + 1
        down = idx + cols
        if c + 1 < cols and right < n:
            links.append((idx, right))
        if down < n:
            links.append((idx, down))
    return _build(n, links, rng, cfg)


def star_topology(
    n: int,
    rng: np.random.Generator | int | None = None,
    cfg: TopologyConfig | None = None,
    *,
    hub: int = 0,
) -> EdgeTopology:
    """Hub-and-spoke: every server links to the ``hub``."""
    if n <= 0:
        raise TopologyError(f"need at least one server, got n={n}")
    if not (0 <= hub < n):
        raise TopologyError(f"hub {hub} out of range [0, {n})")
    rng = ensure_rng(rng)
    cfg = cfg or TopologyConfig()
    links = [(hub, i) for i in range(n) if i != hub]
    return _build(n, links, rng, cfg)


def scale_free_topology(
    n: int,
    rng: np.random.Generator | int | None = None,
    cfg: TopologyConfig | None = None,
    *,
    m_attach: int = 2,
) -> EdgeTopology:
    """Barabási–Albert preferential attachment with ``m_attach`` links per
    arriving node (implemented directly; no networkx dependency in the hot
    path)."""
    if n <= 0:
        raise TopologyError(f"need at least one server, got n={n}")
    if m_attach < 1:
        raise TopologyError(f"m_attach must be >= 1, got {m_attach}")
    rng = ensure_rng(rng)
    cfg = cfg or TopologyConfig()
    m_attach = min(m_attach, max(n - 1, 1))
    links: list[tuple[int, int]] = []
    # Seed clique over the first m_attach+1 nodes.
    seed = min(m_attach + 1, n)
    for a in range(seed):
        for b in range(a + 1, seed):
            links.append((a, b))
    # Repeated-endpoint list realises preferential attachment.
    endpoints: list[int] = [v for link in links for v in link]
    for v in range(seed, n):
        targets: set[int] = set()
        while len(targets) < m_attach:
            if endpoints and rng.random() < 0.9:
                targets.add(int(endpoints[rng.integers(0, len(endpoints))]))
            else:
                targets.add(int(rng.integers(0, v)))
        # Sorted so link order is independent of set-iteration internals.
        for t in sorted(targets):
            links.append((v, t))
            endpoints.extend((v, t))
    return _build(n, links, rng, cfg)


def geometric_topology(
    server_xy: np.ndarray,
    wiring_radius: float,
    rng: np.random.Generator | int | None = None,
    cfg: TopologyConfig | None = None,
) -> EdgeTopology:
    """Link every server pair within ``wiring_radius`` metres."""
    server_xy = np.asarray(server_xy, dtype=float)
    if server_xy.ndim != 2 or server_xy.shape[1] != 2:
        raise TopologyError(f"server_xy must be (N, 2), got {server_xy.shape}")
    if wiring_radius <= 0:
        raise TopologyError(f"wiring_radius must be > 0, got {wiring_radius}")
    rng = ensure_rng(rng)
    cfg = cfg or TopologyConfig()
    n = len(server_xy)
    dist = pairwise_distances(server_xy, server_xy)
    links = [
        (a, b)
        for a in range(n)
        for b in range(a + 1, n)
        if dist[a, b] <= wiring_radius
    ]
    return _build(n, links, rng, cfg)
