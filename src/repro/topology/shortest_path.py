"""Shortest-path kernels for the edge graph.

The delivery latency of a data item between two servers is its size times
the cheapest path cost, where each link contributes ``1/speed`` seconds per
MB.  Two implementations are provided:

* :func:`dijkstra` — a self-contained binary-heap Dijkstra used as the
  reference implementation and for single-source queries;
* :func:`all_pairs_path_cost` — all-pairs costs via
  :func:`scipy.sparse.csgraph.shortest_path` on the dense cost matrix,
  which for the paper's N ≤ 125 is the fastest option, with the pure
  Dijkstra as a verified fallback (``method="dijkstra-py"``).
"""

from __future__ import annotations

import heapq

import numpy as np
from scipy.sparse.csgraph import shortest_path as _sp_shortest_path

from ..errors import TopologyError

__all__ = ["dijkstra", "all_pairs_path_cost"]


def dijkstra(adjacency_cost: np.ndarray, source: int) -> np.ndarray:
    """Single-source shortest path costs over a dense cost matrix.

    Parameters
    ----------
    adjacency_cost:
        ``(n, n)`` symmetric matrix; ``inf`` marks non-edges, diagonal 0.
    source:
        Source vertex index.

    Returns
    -------
    ``(n,)`` array of minimal path costs; unreachable vertices get ``inf``.
    """
    cost = np.asarray(adjacency_cost, dtype=float)
    n = cost.shape[0]
    if cost.shape != (n, n):
        raise TopologyError(f"adjacency must be square, got {cost.shape}")
    if not (0 <= source < n):
        raise TopologyError(f"source {source} out of range [0, {n})")
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    done = np.zeros(n, dtype=bool)
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if done[v]:
            continue
        done[v] = True
        # Relax all neighbours in one vectorised sweep; push improved ones.
        nd = d + cost[v]
        improved = np.flatnonzero((nd < dist) & ~done)
        if len(improved):
            dist[improved] = nd[improved]
            for w in improved:
                heapq.heappush(heap, (float(nd[w]), int(w)))
    return dist


def all_pairs_path_cost(
    adjacency_cost: np.ndarray, *, method: str = "scipy"
) -> np.ndarray:
    """All-pairs shortest path costs.

    ``method="scipy"`` delegates to the compiled csgraph kernel;
    ``method="dijkstra-py"`` runs the pure-Python reference from every
    source (used in tests to cross-validate the compiled path).
    """
    cost = np.asarray(adjacency_cost, dtype=float)
    n = cost.shape[0]
    if cost.shape != (n, n):
        raise TopologyError(f"adjacency must be square, got {cost.shape}")
    if method == "scipy":
        # csgraph treats 0 as "no edge" in dense input unless inf-marked;
        # our matrix already uses inf for non-edges and 0 diagonal.
        out = _sp_shortest_path(cost, method="D", directed=False)
        return np.asarray(out, dtype=float)
    if method == "dijkstra-py":
        return np.stack([dijkstra(cost, s) for s in range(n)])
    raise TopologyError(f"unknown method {method!r}")
