"""The edge-server graph: random link generation per Section 4.3.

Given ``density`` and ``N``, the paper generates ``density · N`` random
links between edge servers.  Links carry a transfer speed drawn uniformly
from the configured range; pairs of servers with no connecting path fall
back to the cloud for data exchange (handled by the latency model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..config import TopologyConfig
from ..errors import TopologyError
from ..rng import ensure_rng

__all__ = ["EdgeTopology", "build_topology"]


@dataclass(frozen=True)
class EdgeTopology:
    """An undirected edge-server graph with per-link transfer speeds.

    Attributes
    ----------
    n : number of edge servers (vertices).
    links : ``(E, 2)`` int array of vertex pairs, each pair sorted and
        unique (no self loops, no parallel edges).
    speeds : ``(E,)`` link transfer speeds in MB/s.
    cloud_speed : edge-to-cloud transfer speed in MB/s.
    """

    n: int
    links: np.ndarray
    speeds: np.ndarray
    cloud_speed: float = 600.0
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        links = np.asarray(self.links, dtype=np.int64).reshape(-1, 2)
        speeds = np.asarray(self.speeds, dtype=float).reshape(-1)
        object.__setattr__(self, "links", links)
        object.__setattr__(self, "speeds", speeds)
        if self.n <= 0:
            raise TopologyError(f"topology needs at least one server, got n={self.n}")
        if len(links) != len(speeds):
            raise TopologyError(
                f"{len(links)} links but {len(speeds)} speeds"
            )
        if len(links):
            if links.min() < 0 or links.max() >= self.n:
                raise TopologyError("link endpoint out of range")
            if np.any(links[:, 0] == links[:, 1]):
                raise TopologyError("self-loops are not allowed")
            canon = np.sort(links, axis=1)
            if len(np.unique(canon, axis=0)) != len(canon):
                raise TopologyError("parallel links are not allowed")
            if np.any(speeds <= 0):
                raise TopologyError("link speeds must be positive")
        if self.cloud_speed <= 0:
            raise TopologyError(f"cloud_speed must be positive, got {self.cloud_speed}")

    @property
    def n_links(self) -> int:
        return len(self.links)

    @cached_property
    def adjacency_cost(self) -> np.ndarray:
        """Dense ``(n, n)`` symmetric matrix of per-MB link costs (s/MB).

        Non-adjacent pairs hold ``inf``; the diagonal is zero.
        """
        cost = np.full((self.n, self.n), np.inf)
        np.fill_diagonal(cost, 0.0)
        if len(self.links):
            a, b = self.links[:, 0], self.links[:, 1]
            w = 1.0 / self.speeds
            # Keep the fastest link if duplicates were ever admitted upstream.
            cost[a, b] = np.minimum(cost[a, b], w)
            cost[b, a] = cost[a, b]
        return cost

    @cached_property
    def degree(self) -> np.ndarray:
        deg = np.zeros(self.n, dtype=np.int64)
        if len(self.links):
            np.add.at(deg, self.links[:, 0], 1)
            np.add.at(deg, self.links[:, 1], 1)
        return deg

    def neighbors(self, i: int) -> np.ndarray:
        """Indices of servers directly linked to server ``i``."""
        if not (0 <= i < self.n):
            raise TopologyError(f"server index {i} out of range [0, {self.n})")
        if not len(self.links):
            return np.empty(0, dtype=np.int64)
        mask_a = self.links[:, 0] == i
        mask_b = self.links[:, 1] == i
        return np.concatenate([self.links[mask_b, 0], self.links[mask_a, 1]])

    def is_connected(self) -> bool:
        """Whether the edge graph (ignoring the cloud) is connected."""
        if self.n == 1:
            return True
        seen = np.zeros(self.n, dtype=bool)
        stack = [0]
        seen[0] = True
        adj: list[list[int]] = [[] for _ in range(self.n)]
        for (a, b) in self.links:
            adj[a].append(int(b))
            adj[b].append(int(a))
        while stack:
            v = stack.pop()
            for w in adj[v]:
                if not seen[w]:
                    seen[w] = True
                    stack.append(w)
        return bool(seen.all())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EdgeTopology(n={self.n}, links={self.n_links}, cloud={self.cloud_speed} MB/s)"


def build_topology(
    n: int,
    density: float,
    rng: np.random.Generator | int | None = None,
    cfg: TopologyConfig | None = None,
) -> EdgeTopology:
    """Generate a random edge topology with ``round(density · n)`` links.

    Links are sampled uniformly without replacement from all unordered
    server pairs; when ``density · n`` exceeds the number of available
    pairs, the graph is complete.  ``density = 1.0`` therefore yields a
    sparse, possibly disconnected graph — exactly the paper's low-density
    regime where the cloud fallback matters.
    """
    rng = ensure_rng(rng)
    cfg = cfg or TopologyConfig()
    if n <= 0:
        raise TopologyError(f"need at least one server, got n={n}")
    if density < 0:
        raise TopologyError(f"density must be >= 0, got {density}")
    n_pairs = n * (n - 1) // 2
    target = min(int(round(density * n)), n_pairs)
    if target == 0:
        links = np.empty((0, 2), dtype=np.int64)
        speeds = np.empty(0, dtype=float)
        return EdgeTopology(n=n, links=links, speeds=speeds, cloud_speed=cfg.cloud_speed)
    flat = rng.choice(n_pairs, size=target, replace=False)
    links = _unrank_pairs(flat, n)
    lo, hi = cfg.edge_speed_range
    speeds = rng.uniform(lo, hi, size=target)
    return EdgeTopology(n=n, links=links, speeds=speeds, cloud_speed=cfg.cloud_speed)


def _unrank_pairs(ranks: np.ndarray, n: int) -> np.ndarray:
    """Map flat indices in ``[0, C(n,2))`` to unordered pairs ``(a, b)``.

    Uses the row-major enumeration of the strict upper triangle: index
    ``r`` belongs to row ``a`` where rows have lengths ``n-1, n-2, ...``.
    Vectorised closed form via the quadratic formula.
    """
    ranks = np.asarray(ranks, dtype=np.int64)
    # offset(a) = a*n - a*(a+1)/2 is the first rank of row a.
    # Solve offset(a) <= r < offset(a+1) for a.
    r = ranks.astype(float)
    a = np.floor((2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * r)) / 2).astype(np.int64)
    # Guard against floating-point edge cases at row boundaries.
    offset = a * n - a * (a + 1) // 2
    too_big = offset > ranks
    a[too_big] -= 1
    offset = a * n - a * (a + 1) // 2
    b = (ranks - offset) + a + 1
    return np.column_stack([a, b])
