"""Edge-storage network topology substrate.

Edge servers are linked by high-speed wired links (``density · N`` random
links, speeds 2000–6000 MB/s); every server also reaches the app vendor's
remote cloud over a 600 MB/s back-haul.  The data-transfer latency model
``L_{k,o,i} = s_k · pathcost(o, i)`` is derived from all-pairs shortest
path costs where each link's cost is its *seconds-per-MB* transfer rate.
"""

from .graph import EdgeTopology, build_topology
from .latency import DeliveryLatencyModel
from .shortest_path import all_pairs_path_cost, dijkstra

__all__ = [
    "EdgeTopology",
    "build_topology",
    "DeliveryLatencyModel",
    "dijkstra",
    "all_pairs_path_cost",
]
