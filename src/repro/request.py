"""The schema-versioned :class:`SolveRequest`: one object describing a run.

:func:`repro.api.solve` grew eleven keyword arguments across five PRs —
solver name, two phase configs, sharding, warm start, churn mask, tracer,
RNG, an IP time budget, a validation switch and a solver-options escape
hatch.  Every front-end (CLI, experiment harness, streaming replay, and
now the IDDE-Serve daemon) re-spelled that sprawl its own way.

:class:`SolveRequest` consolidates the run description into a single
frozen dataclass that is *also* the daemon's wire format: the
``idde-request/1`` JSON document round-trips through
:meth:`SolveRequest.to_dict` / :meth:`SolveRequest.from_dict` with strict
validation — unknown keys are errors, nested configs reconstruct through
their own ``__post_init__`` checks — so a malformed request fails loudly
at the boundary, never deep inside a kernel.

Two request fields are *runtime state*, not wire data:

* ``warm_start`` may hold a prior :class:`~repro.api.Solution` (or bare
  :class:`~repro.core.profiles.AllocationProfile`) in-process.  On the
  wire it degrades to a boolean: ``true`` asks the receiving
  :class:`~repro.serve.SolverSession` to warm-start from its *resident*
  solution (the daemon owns the state, the request only opts in).
* ``rng`` may hold a live generator in-process; the wire accepts only an
  integer seed (or ``null``) so a replayed request is deterministic.

``tracer`` is deliberately **not** a request field — observability is an
execution-context concern, threaded separately through
:func:`repro.api.solve`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from .config import DeliveryConfig, GameConfig
from .errors import ConfigurationError
from .sharding import ShardConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .api import Solution
    from .core.profiles import AllocationProfile

__all__ = ["REQUEST_SCHEMA", "SolveRequest", "json_scalarish"]

REQUEST_SCHEMA = "idde-request/1"

#: Wire keys of the ``idde-request/1`` document, in canonical order.
_WIRE_KEYS = (
    "schema",
    "solver",
    "game",
    "delivery",
    "sharding",
    "warm_start",
    "active",
    "rng",
    "ip_time_budget_s",
    "validate",
    "solver_options",
)


def json_scalarish(value: Any) -> bool:
    """True for values that serialise to JSON without coercion."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return True
    if isinstance(value, (list, tuple)):
        return all(json_scalarish(v) for v in value)
    if isinstance(value, dict):
        return all(
            isinstance(k, str) and json_scalarish(v) for k, v in value.items()
        )
    return False


def _config_to_doc(cfg: Any) -> dict[str, Any] | None:
    """One nested config as a JSON object (tuples become lists)."""
    if cfg is None:
        return None
    doc: dict[str, Any] = {}
    for f in fields(cfg):
        value = getattr(cfg, f.name)
        doc[f.name] = list(value) if isinstance(value, tuple) else value
    return doc


def _config_from_doc(cls: type, doc: Any, what: str) -> Any:
    """Rebuild a nested config, rejecting unknown keys loudly."""
    if doc is None:
        return None
    if not isinstance(doc, Mapping):
        raise ConfigurationError(
            f"request {what!r} must be a JSON object or null, got {type(doc).__name__}"
        )
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(doc) - allowed)
    if unknown:
        raise ConfigurationError(
            f"unknown {what} key(s) {unknown}; known keys: {sorted(allowed)}"
        )
    return cls(**doc)


@dataclass(frozen=True, eq=False)
class SolveRequest:
    """A complete, picklable description of one :func:`repro.api.solve` run.

    Attributes mirror the façade's former keyword arguments one-to-one;
    see :func:`repro.api.solve` for per-field semantics.  ``warm_start``
    additionally accepts the boolean sentinel ``True`` (wire form): *the
    executing session should substitute its resident prior solution* —
    only the IDDE-Serve daemon resolves that, a direct
    :func:`~repro.api.solve` call on a ``True`` sentinel raises.
    """

    solver: str = "idde-g"
    game_config: GameConfig | None = None
    delivery_config: DeliveryConfig | None = None
    sharding: ShardConfig | None = None
    warm_start: "Solution | AllocationProfile | bool | None" = None
    active: np.ndarray | None = None
    rng: Any = None
    ip_time_budget_s: float | None = None
    validate: bool = True
    solver_options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.solver, str) or not self.solver:
            raise ConfigurationError(
                f"solver must be a non-empty registry name, got {self.solver!r}"
            )
        if self.warm_start is False:
            # Wire ``false`` means "no warm start" — normalise to None so
            # in-process truthiness checks stay simple.
            object.__setattr__(self, "warm_start", None)
        if self.active is not None:
            try:
                active = np.asarray(self.active, dtype=bool)
            except (TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"active must be a flat 0/1 mask: {exc}"
                ) from exc
            if active.ndim != 1:
                raise ConfigurationError(
                    f"active must be a flat 0/1 mask, got an array of "
                    f"shape {tuple(active.shape)}"
                )
            object.__setattr__(self, "active", active)
        if not isinstance(self.solver_options, dict):
            raise ConfigurationError(
                f"solver_options must be a dict, got {type(self.solver_options).__name__}"
            )
        if self.ip_time_budget_s is not None and self.ip_time_budget_s <= 0:
            raise ConfigurationError(
                f"ip_time_budget_s must be > 0, got {self.ip_time_budget_s}"
            )

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------
    def to_dict(self, *, lenient: bool = False) -> dict[str, Any]:
        """The ``idde-request/1`` JSON document for this request.

        Strict by default: a live ``warm_start`` object or a non-integer
        ``rng`` cannot go on the wire and raise
        :class:`~repro.errors.ConfigurationError`.  ``lenient=True`` (used
        when embedding the request in an ``idde-solution/2`` document)
        degrades them instead — ``warm_start`` to its boolean presence,
        ``rng`` to ``null``.
        """
        warm: bool
        if self.warm_start is None or isinstance(self.warm_start, bool):
            warm = bool(self.warm_start)
        elif lenient:
            warm = True
        else:
            raise ConfigurationError(
                "warm_start holds a live solution object; the wire form is "
                "boolean (the serving session owns the resident state) — "
                "pass warm_start=True or serialise with lenient=True"
            )
        rng: int | None
        if self.rng is None:
            rng = None
        elif isinstance(self.rng, (int, np.integer)) and not isinstance(
            self.rng, bool
        ):
            rng = int(self.rng)
        elif lenient:
            rng = None
        else:
            raise ConfigurationError(
                f"rng must be an integer seed (or None) on the wire, "
                f"got {type(self.rng).__name__}"
            )
        if not json_scalarish(self.solver_options):
            raise ConfigurationError(
                "solver_options must be JSON-serialisable to go on the wire"
            )
        return {
            "schema": REQUEST_SCHEMA,
            "solver": self.solver,
            "game": _config_to_doc(self.game_config),
            "delivery": _config_to_doc(self.delivery_config),
            "sharding": _config_to_doc(self.sharding),
            "warm_start": warm,
            "active": (
                None if self.active is None else [int(b) for b in self.active]
            ),
            "rng": rng,
            "ip_time_budget_s": self.ip_time_budget_s,
            "validate": self.validate,
            "solver_options": dict(self.solver_options),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "SolveRequest":
        """Rebuild a request from an ``idde-request/1`` document.

        Validation is strict: the schema tag must match, unknown keys are
        errors (no silent typo-tolerance on a wire format), and nested
        configs re-run their own ``__post_init__`` range checks.
        """
        if not isinstance(doc, Mapping):
            raise ConfigurationError(
                f"request document must be a JSON object, got {type(doc).__name__}"
            )
        schema = doc.get("schema")
        if schema != REQUEST_SCHEMA:
            raise ConfigurationError(
                f"expected request schema {REQUEST_SCHEMA!r}, got {schema!r}"
            )
        unknown = sorted(set(doc) - set(_WIRE_KEYS))
        if unknown:
            raise ConfigurationError(
                f"unknown request key(s) {unknown}; known keys: {sorted(_WIRE_KEYS)}"
            )
        warm = doc.get("warm_start", False)
        if not isinstance(warm, bool):
            raise ConfigurationError(
                f"warm_start must be a boolean on the wire, got {warm!r}"
            )
        rng = doc.get("rng")
        if rng is not None and (isinstance(rng, bool) or not isinstance(rng, int)):
            raise ConfigurationError(
                f"rng must be an integer seed or null, got {rng!r}"
            )
        validate = doc.get("validate", True)
        if not isinstance(validate, bool):
            raise ConfigurationError(
                f"validate must be a boolean, got {validate!r}"
            )
        active = doc.get("active")
        if active is not None and not isinstance(active, (list, tuple)):
            raise ConfigurationError(
                f"active must be a 0/1 list or null, got {type(active).__name__}"
            )
        options = doc.get("solver_options") or {}
        if not isinstance(options, Mapping):
            raise ConfigurationError(
                f"solver_options must be a JSON object, got {type(options).__name__}"
            )
        return cls(
            solver=doc.get("solver", "idde-g"),
            game_config=_config_from_doc(GameConfig, doc.get("game"), "game"),
            delivery_config=_config_from_doc(
                DeliveryConfig, doc.get("delivery"), "delivery"
            ),
            sharding=_config_from_doc(ShardConfig, doc.get("sharding"), "sharding"),
            warm_start=warm or None,
            # __post_init__ coerces and validates the mask (a ragged or
            # nested list is a ConfigurationError, not a numpy traceback).
            active=active,
            rng=rng,
            ip_time_budget_s=doc.get("ip_time_budget_s"),
            validate=validate,
            solver_options=dict(options),
        )

    # ------------------------------------------------------------------
    def with_runtime(
        self,
        *,
        warm_start: "Solution | AllocationProfile | bool | None" = None,
        active: np.ndarray | None = None,
        rng: Any = None,
    ) -> "SolveRequest":
        """A copy with the per-call runtime state swapped in.

        The streaming/serving loops hold one base request describing the
        solver and configs, then stamp each epoch's warm-start profile,
        churn mask and RNG stream through here.
        """
        return replace(
            self,
            warm_start=warm_start,
            active=active,
            rng=rng,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bits = [f"solver={self.solver!r}"]
        if self.game_config is not None:
            bits.append(f"kernel={self.game_config.kernel!r}")
        if self.sharding is not None:
            bits.append("sharded")
        if self.warm_start is not None:
            bits.append("warm")
        return f"SolveRequest({', '.join(bits)})"
