"""Command-line interface: ``idde`` / ``python -m repro``.

Subcommands
-----------
``solve``      Solve one generated instance with one or all approaches.
``sweep``      Run one Table 2 experiment set and print its tables.
``reproduce``  Run every set and emit the full markdown report (optionally
               writing CSV/JSON artifacts with ``--output``).
``fig1``       Run the Fig. 1 latency probe.
``theory``     Print the theoretical bounds for a generated instance.
``dynamics``   Run the mobility extension: warm/cold/static re-solve
               policies over moving users.
``replay``     Run the streaming workload engine: a Poisson/Zipf event
               stream (or a saved ``idde-events/1`` trace) batched into
               epochs, each re-solved through the façade under a
               warm/cold/static policy; ``--verify`` re-certifies the
               warm and cold end-states at ``effective_epsilon``
               (see docs/STREAMING.md).
``gap``        Measure the Phase 2 greedy's optimality gap against the
               exact MILP delivery oracle.
``lint``       Run IDDE-Lint, the AST invariant checker guarding RNG
               discipline, unit honesty, determinism and layering
               (see docs/STATIC_ANALYSIS.md).
``bench``      Run IDDE-Bench, the statistical microbenchmark suite over
               the IDDE-G hot paths, compare two benchmark documents
               with the noise-aware regression gate, or verify the
               reference/batched kernel-pair parity
               (see docs/BENCHMARKING.md).
``trace``      Inspect IDDE-Trace documents: ``idde trace summarize``
               renders the span tree, top counters and event mix of an
               ``idde-trace/1`` JSONL file (see docs/OBSERVABILITY.md).
``serve``      Boot IDDE-Serve, the long-lived async solver daemon: a
               stateful session behind a schema-versioned HTTP/JSON API
               (``idde-request/1`` in, ``idde-solution/2`` out,
               ``idde-events/1`` deltas re-solved warm; see
               docs/SERVING.md).

``solve``, ``sweep`` and ``reproduce`` accept ``--trace out.jsonl`` to
record a full execution trace; ``solve``/``sweep`` accept ``--kernel
batched`` to run the IDDE-G game on the batched evaluation kernel,
``--delivery-kernel batched`` to run Phase 2 on the incremental
greedy-delivery kernel, and ``--shards auto|N`` to route IDDE-G through
the interference-domain decomposition solver (see docs/SHARDING.md).
All solving routes through :func:`repro.api.solve`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .core.bounds import theory_report
from .core.instance import IDDEInstance
from .experiments.figures import PAPER, shape_checks
from .experiments.latency_probe import run_latency_probe
from .experiments.report import render_advantage_markdown, render_sweep_markdown
from .experiments.settings import ALL_SETS
from .experiments.sweep import run_sweep
from .parallel import ParallelConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="idde",
        description="IDDE: interference-aware data delivery in edge storage systems",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="-v for INFO, -vv for DEBUG diagnostics",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve one generated instance")
    _add_instance_args(p_solve)
    p_solve.add_argument(
        "--solver",
        default="all",
        help="solver name (idde-g, idde-ip, saa, cdp, dup-g, random, nearest) or 'all'",
    )
    p_solve.add_argument("--ip-budget", type=float, default=3.0, help="IDDE-IP seconds")
    p_solve.add_argument(
        "--map", action="store_true", help="draw the scenario and IDDE-G allocation"
    )
    _add_kernel_arg(p_solve)
    _add_shards_arg(p_solve)
    _add_trace_arg(p_solve)
    p_solve.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="text table or the idde-solution/2 JSON document",
    )

    p_sweep = sub.add_parser("sweep", help="run one Table 2 experiment set")
    p_sweep.add_argument("set", choices=["1", "2", "3", "4"], help="Table 2 set number")
    _add_sweep_args(p_sweep)
    _add_kernel_arg(p_sweep)
    _add_shards_arg(p_sweep)
    _add_trace_arg(p_sweep)

    p_rep = sub.add_parser("reproduce", help="run every set; emit the markdown report")
    _add_sweep_args(p_rep)
    p_rep.add_argument(
        "--output", default=None, help="directory for CSV/JSON/markdown artifacts"
    )
    _add_trace_arg(p_rep)

    p_fig1 = sub.add_parser("fig1", help="run the Fig. 1 latency probe")
    p_fig1.add_argument("--seed", type=int, default=0)
    p_fig1.add_argument("--days", type=int, default=7)

    p_theory = sub.add_parser("theory", help="theoretical bounds for an instance")
    _add_instance_args(p_theory)

    p_dyn = sub.add_parser("dynamics", help="mobility extension simulation")
    _add_instance_args(p_dyn)
    p_dyn.add_argument("--epochs", type=int, default=8)
    p_dyn.add_argument("--dt", type=float, default=30.0, help="seconds per epoch")
    p_dyn.add_argument("--speed", type=float, default=10.0, help="mean user speed m/s")
    p_dyn.add_argument(
        "--policy",
        default="all",
        choices=["warm", "cold", "static", "all"],
        help="re-solve policy",
    )

    p_replay = sub.add_parser(
        "replay", help="streaming workload replay with incremental re-solve"
    )
    _add_instance_args(p_replay)
    p_replay.add_argument(
        "--events", type=int, default=1000, help="events to generate"
    )
    p_replay.add_argument(
        "--epoch-events", type=int, default=100, help="events per epoch batch"
    )
    p_replay.add_argument(
        "--policy",
        default="warm",
        choices=["warm", "cold", "static"],
        help="re-solve policy",
    )
    p_replay.add_argument(
        "--input",
        default=None,
        metavar="PATH",
        help="replay a saved idde-events/1 JSONL trace instead of generating",
    )
    p_replay.add_argument(
        "--save-events",
        default=None,
        metavar="PATH",
        help="save the generated stream as idde-events/1 JSONL",
    )
    p_replay.add_argument(
        "--verify",
        action="store_true",
        help="run warm AND cold over the same batches; re-certify both "
        "end-states as ε-Nash on the final instance (exit 1 on failure)",
    )
    _add_kernel_arg(p_replay)
    _add_shards_arg(p_replay)
    _add_trace_arg(p_replay)

    p_gap = sub.add_parser("gap", help="greedy vs exact MILP delivery gap")
    _add_instance_args(p_gap)
    p_gap.add_argument("--trials", type=int, default=5)

    p_lint = sub.add_parser(
        "lint", help="run IDDE-Lint, the repo's AST invariant checker"
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    p_lint.add_argument(
        "--format", choices=["text", "json"], default="text", help="report format"
    )
    p_lint.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON path (default: .idde-lint-baseline.json if present)",
    )
    p_lint.add_argument(
        "--no-baseline", action="store_true", help="ignore any baseline file"
    )
    p_lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline file and exit 0",
    )
    p_lint.add_argument(
        "--check-baseline",
        action="store_true",
        help="also fail if any baseline entry is stale (the baseline may "
        "only ever shrink; run --prune-baseline to fix)",
    )
    p_lint.add_argument(
        "--prune-baseline",
        action="store_true",
        help="clamp baseline counts to the current findings and exit",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    p_lint.add_argument(
        "--explain",
        default=None,
        metavar="IDDE0NN",
        help="print the long-form documentation for one rule code and exit",
    )
    p_lint.add_argument(
        "--graph",
        choices=["dot", "json"],
        default=None,
        help="export the project call graph instead of linting",
    )
    p_lint.add_argument(
        "--doc-check",
        action="store_true",
        help="also fail if docs/STATIC_ANALYSIS.md drifted from the registry",
    )
    p_lint.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="incremental cache file (default: .idde-lint-cache.json)",
    )
    p_lint.add_argument(
        "--no-cache", action="store_true", help="disable the incremental cache"
    )

    p_bench = sub.add_parser(
        "bench", help="run the IDDE-Bench microbenchmarks or compare two documents"
    )
    p_bench.add_argument(
        "--filter", default=None, help="run only benchmarks whose name contains this"
    )
    p_bench.add_argument(
        "--scale", choices=["S", "M", "M_k64", "L", "XL"], default="S", help="fixture scale"
    )
    p_bench.add_argument("--repeats", type=int, default=5, help="timed runs per bench")
    p_bench.add_argument("--warmup", type=int, default=1, help="discarded warmup runs")
    p_bench.add_argument("--seed", type=int, default=0, help="fixture root seed")
    p_bench.add_argument(
        "--format", choices=["text", "json"], default="text", help="report format"
    )
    p_bench.add_argument(
        "--output", default=None, help="write the JSON document here (e.g. BENCH_<rev>.json)"
    )
    p_bench.add_argument(
        "--list", action="store_true", dest="list_benches",
        help="print the benchmark registry and exit",
    )
    p_bench.add_argument(
        "--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
        help="compare two benchmark documents; exit 1 on regression",
    )
    p_bench.add_argument(
        "--threshold", type=float, default=None,
        help="regression gate ratio for --compare (default 2.0)",
    )
    p_bench.add_argument(
        "--verify-parity", action="store_true",
        help="verify reference/batched kernel-pair parity; exit 1 on mismatch",
    )
    p_bench.add_argument(
        "--verify-shard-parity", action="store_true",
        help="verify sharded-vs-global solver parity; exit 1 on mismatch",
    )
    p_bench.add_argument(
        "--verify-delivery-parity", action="store_true",
        help="verify reference/batched delivery kernel-pair parity; exit 1 on mismatch",
    )

    p_serve = sub.add_parser(
        "serve", help="boot the IDDE-Serve async solver daemon"
    )
    _add_instance_args(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=8787, help="bind port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--solver",
        default="idde-g",
        help="base solver for the session (idde-g, idde-ip, saa, cdp, dup-g, ...)",
    )
    p_serve.add_argument(
        "--request-timeout", type=float, default=300.0,
        help="per-request wall-clock budget in seconds (504 past it)",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=8,
        help="max mutating requests admitted at once (429 past it)",
    )
    _add_kernel_arg(p_serve)
    _add_shards_arg(p_serve)

    p_trace = sub.add_parser(
        "trace", help="inspect IDDE-Trace (idde-trace/1) JSONL documents"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_sum = trace_sub.add_parser(
        "summarize", help="render the span tree, top counters and event mix"
    )
    p_sum.add_argument("path", help="idde-trace/1 JSONL file")
    p_sum.add_argument(
        "--format", choices=["text", "json"], default="text", help="report format"
    )
    return parser


def _add_kernel_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--kernel",
        choices=["reference", "batched"],
        default="reference",
        help="IDDE-G game evaluation kernel (the verified pair; identical results)",
    )
    p.add_argument(
        "--delivery-kernel",
        choices=["reference", "batched"],
        default="reference",
        help="Phase 2 greedy-delivery kernel (the verified pair; identical placements)",
    )


def _shards_value(text: str) -> int | str:
    """Parse ``--shards``: the literal ``auto`` or a positive shard count."""
    if text == "auto":
        return "auto"
    try:
        n = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'auto' or a positive integer, got {text!r}"
        ) from None
    if n < 1:
        raise argparse.ArgumentTypeError(f"shard count must be >= 1, got {n}")
    return n


def _add_shards_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--shards",
        type=_shards_value,
        default=None,
        metavar="auto|N",
        help="solve IDDE-G by interference-domain decomposition: 'auto' "
        "(natural coverage domains) or a target shard count",
    )


def _add_trace_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record an idde-trace/1 JSONL execution trace to PATH",
    )


def _add_instance_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--n", type=int, default=30, help="edge servers")
    p.add_argument("--m", type=int, default=200, help="users")
    p.add_argument("--k", type=int, default=5, help="data items")
    p.add_argument("--density", type=float, default=1.0, help="link density")
    p.add_argument("--seed", type=int, default=0)


def _add_sweep_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--reps", type=int, default=5, help="repetitions per point (paper: 50)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--ip-budget", type=float, default=3.0, help="IDDE-IP seconds per trial")
    p.add_argument("--workers", type=int, default=None, help="worker processes")


def _shard_config(shards: int | str | None):
    """Map a parsed ``--shards`` value to a :class:`ShardConfig` (or None)."""
    if shards is None:
        return None
    from .sharding import ShardConfig

    return ShardConfig() if shards == "auto" else ShardConfig(n_shards=int(shards))


def _make_tracer(args: argparse.Namespace):
    """A recording tracer when ``--trace`` was given, else ``None``."""
    if getattr(args, "trace", None):
        from .obs import RecordingTracer

        return RecordingTracer()
    return None


def _save_trace(tracer, args: argparse.Namespace, **meta) -> None:
    if tracer is None:
        return
    from .obs import save_trace

    path = save_trace(tracer, args.trace, meta=meta)
    print(f"wrote trace {path}", file=sys.stderr)


def _request_for(args: argparse.Namespace, name: str):
    """One canonical :class:`~repro.request.SolveRequest` from CLI flags.

    The single flag→request mapping ``idde solve`` and ``idde serve``
    share, so both front-ends describe identical runs identically.
    """
    from .config import DeliveryConfig, GameConfig
    from .request import SolveRequest

    is_g = name == "idde-g"
    return SolveRequest(
        solver=name,
        game_config=GameConfig(kernel=args.kernel) if is_g else None,
        delivery_config=(
            DeliveryConfig(kernel=args.delivery_kernel) if is_g else None
        ),
        sharding=_shard_config(args.shards) if is_g else None,
        ip_time_budget_s=getattr(args, "ip_budget", None),
        rng=args.seed,
    )


def _cmd_solve(args: argparse.Namespace) -> int:
    import json

    from .api import SOLUTION_SCHEMA, solve
    from .baselines import CANONICAL_SOLVERS, resolve_solver_name
    from .errors import SolverLookupError

    names = list(CANONICAL_SOLVERS) if args.solver == "all" else [args.solver]
    try:
        names = [resolve_solver_name(n) for n in names]
    except SolverLookupError as exc:
        print(f"idde solve: error: {exc.args[0]}", file=sys.stderr)
        return 2

    instance = IDDEInstance.generate(
        n=args.n, m=args.m, k=args.k, density=args.density, seed=args.seed
    )
    tracer = _make_tracer(args)
    solutions = [
        solve(instance, _request_for(args, name), tracer=tracer) for name in names
    ]
    _save_trace(
        tracer, args, command="solve", solver=args.solver, kernel=args.kernel,
        delivery_kernel=args.delivery_kernel, seed=args.seed, shards=args.shards,
    )

    if args.format == "json":
        doc = {
            "schema": SOLUTION_SCHEMA,
            "instance": {
                "n": args.n,
                "m": args.m,
                "k": args.k,
                "density": args.density,
                "seed": args.seed,
                "kernel": args.kernel,
                "delivery_kernel": args.delivery_kernel,
            },
            "solutions": [sol.to_dict() for sol in solutions],
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0

    print(f"instance: {instance}")
    print(f"{'solver':>10} | {'R_avg (MB/s)':>12} | {'L_avg (ms)':>10} | {'time (s)':>9}")
    last = None
    for sol in solutions:
        print(
            f"{sol.solver:>10} | {sol.r_avg:12.2f} | {sol.l_avg_ms:10.2f} | "
            f"{sol.wall_time_s:9.4f}"
        )
        if sol.solver == "IDDE-G":
            last = sol
    if getattr(args, "map", False):
        from .viz import scenario_map

        alloc = last.allocation if last is not None else None
        print()
        print(scenario_map(instance.scenario, alloc))
        print("# = server, digits = users (glyph = allocated server mod 36)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    settings = ALL_SETS[int(args.set) - 1]
    tracer = _make_tracer(args)
    result = run_sweep(
        settings,
        reps=args.reps,
        seed=args.seed,
        ip_time_budget_s=args.ip_budget,
        parallel=ParallelConfig(n_workers=args.workers),
        kernel=args.kernel,
        delivery_kernel=args.delivery_kernel,
        shards=args.shards,
        tracer=tracer,
    )
    _save_trace(
        tracer, args, command="sweep", set=args.set, kernel=args.kernel,
        delivery_kernel=args.delivery_kernel, seed=args.seed, shards=args.shards,
    )
    for metric in ("r_avg", "l_avg_ms", "time_s"):
        print(render_sweep_markdown(result, metric))
    print(render_advantage_markdown(result))
    print(f"shape checks: {shape_checks(result)}")
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from .experiments.paper import reproduce_all

    tracer = _make_tracer(args)
    report = reproduce_all(
        reps=args.reps,
        seed=args.seed,
        ip_time_budget_s=args.ip_budget,
        workers=args.workers,
        output_dir=args.output,
        tracer=tracer,
    )
    _save_trace(tracer, args, command="reproduce", seed=args.seed)
    print(report.markdown)
    print("paper overall advantages:", dict(PAPER["overall_advantage_pct"]["r_avg"]))
    print(f"all headline shapes hold: {report.all_shapes_hold()}")
    if report.artifacts:
        print("artifacts:")
        for path in report.artifacts:
            print(f"  {path}")
    return 0


def _cmd_dynamics(args: argparse.Namespace) -> int:
    from .datasets.melbourne import CBD_REGION
    from .dynamics import DynamicSimulation, RandomWaypoint

    instance = IDDEInstance.generate(
        n=args.n, m=args.m, k=args.k, density=args.density, seed=args.seed
    )
    policies = ["warm", "cold", "static"] if args.policy == "all" else [args.policy]
    speed = (max(args.speed * 0.5, 0.1), args.speed * 1.5)
    print(f"instance: {instance}; {args.epochs} epochs x {args.dt}s, speeds {speed} m/s")
    print(
        f"{'policy':>7} | {'R_avg':>7} | {'L_avg':>7} | {'realloc':>7} | "
        f"{'moves':>6} | {'migr MB':>8} | {'solve s':>8}"
    )
    for policy in policies:
        mobility = RandomWaypoint(
            instance.scenario.user_xy, CBD_REGION, rng=args.seed, speed_range=speed
        )
        sim = DynamicSimulation(instance, mobility, policy=policy)
        records = sim.run(epochs=args.epochs, dt=args.dt, rng=args.seed)
        s = DynamicSimulation.summarize(records)
        print(
            f"{policy:>7} | {s['mean_r_avg']:7.2f} | {s['mean_l_avg_ms']:7.2f} | "
            f"{s['mean_realloc']:7.1f} | {s['mean_moves']:6.1f} | "
            f"{s['mean_migration_mb']:8.1f} | {s['mean_solve_time_s']:8.4f}"
        )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .errors import ReproError

    try:
        return _replay_impl(args)
    except ReproError as exc:
        print(f"idde replay: error: {exc}", file=sys.stderr)
        return 2


def _replay_impl(args: argparse.Namespace) -> int:
    from .config import DeliveryConfig, GameConfig
    from .dynamics import DynamicSimulation
    from .workload import (
        WorkloadState,
        batch_by_count,
        load_events,
        poisson_zipf_stream,
        save_events,
    )

    instance = IDDEInstance.generate(
        n=args.n, m=args.m, k=args.k, density=args.density, seed=args.seed
    )
    game_cfg = GameConfig(kernel=args.kernel)
    delivery_cfg = DeliveryConfig(kernel=args.delivery_kernel)
    shard_cfg = _shard_config(args.shards)
    tracer = _make_tracer(args)

    def _events():
        if args.input:
            return load_events(
                args.input,
                expect_users=instance.n_users,
                expect_data=instance.n_data,
            )
        return poisson_zipf_stream(
            instance.scenario, rng=args.seed, n_events=args.events
        )

    if args.save_events:
        n = save_events(
            _events(),
            args.save_events,
            n_users=instance.n_users,
            n_data=instance.n_data,
        )
        print(f"wrote {n} events to {args.save_events}", file=sys.stderr)
        args.input = args.save_events

    def _run(policy: str) -> list:
        sim = DynamicSimulation(
            instance,
            policy=policy,
            game=game_cfg,
            delivery=delivery_cfg,
            sharding=shard_cfg,
            tracer=tracer,
        )
        return sim.run_events(
            batch_by_count(_events(), args.epoch_events), rng=args.seed
        )

    header = (
        f"{'policy':>7} | {'epochs':>6} | {'events':>6} | {'moves':>6} | "
        f"{'R_avg':>7} | {'L_avg':>7} | {'solve s':>8} | {'cert':>4}"
    )

    if args.verify:
        # One materialised batch list would hold every event; instead each
        # policy re-reads/re-generates the identical deterministic stream.
        print(header)
        all_ok = True
        results = {}
        for policy in ("warm", "cold"):
            records = _run(policy)
            results[policy] = records
            # Re-derive the final instance/mask and certify the end-state
            # at the tolerance its own run claims.
            state = WorkloadState.from_scenario(instance.scenario)
            for batch in batch_by_count(_events(), args.epoch_events):
                state.apply(batch)
            final_instance = IDDEInstance(
                state.scenario(instance.scenario), instance.topology, instance.radio
            )
            sol = records[-1].solution
            from .core.game import IddeUGame

            certified = IddeUGame(final_instance, game_cfg).is_nash(
                sol.allocation,
                tol=sol.game.effective_epsilon,
                active=state.active,
            )
            all_ok &= certified
            s = DynamicSimulation.summarize(records)
            print(
                f"{policy:>7} | {len(records):>6} | "
                f"{sum(r.n_events for r in records):>6} | "
                f"{sum(r.game_moves for r in records):>6} | "
                f"{s['mean_r_avg']:7.2f} | {s['mean_l_avg_ms']:7.2f} | "
                f"{sum(r.solve_time_s for r in records):8.3f} | "
                f"{'ok' if certified else 'FAIL':>4}"
            )
        warm_t = sum(r.solve_time_s for r in results["warm"][1:])
        cold_t = sum(r.solve_time_s for r in results["cold"][1:])
        if warm_t > 0:
            print(f"warm/cold re-solve speedup: {cold_t / warm_t:.1f}x", file=sys.stderr)
        _save_trace(tracer, args, command="replay", seed=args.seed, verify=True)
        if not all_ok:
            print("ε-Nash certification FAILED", file=sys.stderr)
            return 1
        return 0

    records = _run(args.policy)
    print(header)
    certs = [
        r.solution.game.is_nash
        for r in records
        if r.solution is not None and r.solution.game is not None
    ]
    s = DynamicSimulation.summarize(records)
    print(
        f"{args.policy:>7} | {len(records):>6} | "
        f"{sum(r.n_events for r in records):>6} | "
        f"{sum(r.game_moves for r in records):>6} | "
        f"{s['mean_r_avg']:7.2f} | {s['mean_l_avg_ms']:7.2f} | "
        f"{sum(r.solve_time_s for r in records):8.3f} | "
        f"{'ok' if all(certs) and certs else '—':>4}"
    )
    _save_trace(tracer, args, command="replay", seed=args.seed, policy=args.policy)
    return 0


def _cmd_gap(args: argparse.Namespace) -> int:
    from .core.delivery import greedy_delivery
    from .core.game import IddeUGame
    from .core.objectives import average_delivery_latency_ms
    from .solvers import optimal_delivery_milp

    print(f"{'seed':>5} | {'greedy (ms)':>11} | {'optimal (ms)':>12} | {'gap %':>6}")
    gaps = []
    for trial in range(args.trials):
        seed = args.seed + trial
        instance = IDDEInstance.generate(
            n=args.n, m=args.m, k=args.k, density=args.density, seed=seed
        )
        alloc = IddeUGame(instance).run(rng=seed).profile
        greedy = greedy_delivery(instance, alloc)
        l_greedy = average_delivery_latency_ms(instance, alloc, greedy.profile)
        milp = optimal_delivery_milp(instance, alloc)
        gap = (
            100.0 * (l_greedy - milp.l_avg_ms) / milp.l_avg_ms
            if milp.l_avg_ms > 0
            else 0.0
        )
        gaps.append(gap)
        print(f"{seed:>5} | {l_greedy:11.3f} | {milp.l_avg_ms:12.3f} | {gap:6.2f}")
    print(f"mean gap over {args.trials} trials: {sum(gaps) / len(gaps):.2f}%")
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    probe = run_latency_probe(args.seed, days=args.days)
    means = probe.mean_ms()
    print(f"{'target':>10} | {'mean (ms)':>9} | {'p95 (ms)':>9} | paper (ms)")
    p95 = probe.percentile_ms(95)
    for target in probe.targets:
        ref = PAPER["fig1_latency_ms"].get(target, float("nan"))
        print(f"{target:>10} | {means[target]:9.1f} | {p95[target]:9.1f} | {ref:.0f}")
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    instance = IDDEInstance.generate(
        n=args.n, m=args.m, k=args.k, density=args.density, seed=args.seed
    )
    report = theory_report(instance)
    print(f"instance: {instance}")
    print(f"Theorem 4 iteration bound: {report.iteration_bound:.3e}")
    print(f"Theorem 5 PoA interval: [{report.poa_interval[0]:.4f}, {report.poa_interval[1]:.1f}]")
    print(f"Theorems 6-7 greedy factor: {report.greedy_factor:.4f}")
    print(f"cloud-only latency: {report.cloud_only_latency_ms:.2f} ms")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .analysis import (
        lint_paths,
        load_baseline,
        render_json,
        render_text,
        write_baseline,
    )
    from .analysis.baseline import DEFAULT_BASELINE_NAME
    from .analysis.registry import explain_code
    from .analysis.report import doc_catalog_problems, render_rule_table
    from .analysis.semantic.cache import DEFAULT_CACHE_NAME

    if args.list_rules:
        print(render_rule_table())
        return 0
    if args.explain:
        text = explain_code(args.explain)
        if text is None:
            print(f"idde lint: error: unknown rule code {args.explain!r}", file=sys.stderr)
            return 2
        print(text)
        return 0
    if args.graph:
        try:
            graph = _build_call_graph(args.paths)
        except FileNotFoundError as exc:
            print(f"idde lint: error: {exc}", file=sys.stderr)
            return 2
        print(graph.to_dot() if args.graph == "dot" else json.dumps(graph.to_dict(), indent=2))
        return 0

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE_NAME)
    baseline = None
    if not args.no_baseline and not args.write_baseline and baseline_path.exists():
        baseline = load_baseline(baseline_path)

    cache = None if args.no_cache else (args.cache or DEFAULT_CACHE_NAME)
    try:
        findings = lint_paths(args.paths, cache=cache)
    except FileNotFoundError as exc:
        print(f"idde lint: error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        written = write_baseline(baseline_path, findings)
        print(f"wrote {len(written)} finding(s) to {baseline_path}")
        return 0
    if args.prune_baseline:
        if baseline is None:
            print("idde lint: no baseline to prune", file=sys.stderr)
            return 2
        pruned = baseline.pruned(findings)
        baseline_path.write_text(pruned.to_json(), encoding="utf-8")
        print(
            f"pruned baseline {baseline_path}: {len(baseline)} -> {len(pruned)} entries"
        )
        return 0

    failures = 0
    if args.check_baseline and baseline is not None:
        stale = baseline.stale_entries(findings)
        if stale:
            for fp, n in sorted(stale.items()):
                print(f"stale baseline entry (x{n}): {fp}", file=sys.stderr)
            print(
                f"idde lint: {sum(stale.values())} stale baseline count(s); the "
                "baseline may only ever shrink — run `idde lint --prune-baseline`",
                file=sys.stderr,
            )
            failures = 1
    if args.doc_check:
        docs = Path(__file__).resolve().parents[2] / "docs" / "STATIC_ANALYSIS.md"
        if docs.exists():
            problems = doc_catalog_problems(docs.read_text(encoding="utf-8"))
        else:
            problems = [f"docs file not found: {docs}"]
        for problem in problems:
            print(f"doc drift: {problem}", file=sys.stderr)
        if problems:
            failures = 1

    baselined = 0
    if baseline is not None:
        kept = baseline.filter(findings)
        baselined = len(findings) - len(kept)
        findings = kept
    render = render_json if args.format == "json" else render_text
    print(render(findings, baselined=baselined))
    return 1 if findings or failures else 0


def _build_call_graph(paths):
    """Parse ``paths`` and build the project call graph (for ``--graph``)."""
    import ast as _ast

    from .analysis.engine import FileContext, _display_path, iter_python_files
    from .analysis.semantic import Project

    contexts = []
    for file in iter_python_files(paths):
        source = file.read_text(encoding="utf-8")
        try:
            tree = _ast.parse(source, filename=str(file))
        except SyntaxError:
            continue
        contexts.append(
            FileContext(path=_display_path(file), source=source, tree=tree)
        )
    return Project.build(contexts).graph


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .bench import (
        BenchRunConfig,
        all_benchmarks,
        build_document,
        compare_documents,
        load_document,
        render_compare_text,
        render_text,
        run_benchmarks,
        save_document,
    )
    from .bench.compare import DEFAULT_THRESHOLD
    from .errors import ReproError

    if args.list_benches:
        print(f"{'benchmark':<28} | description")
        print(f"{'-' * 28}-+-{'-' * 48}")
        for bench in all_benchmarks():
            print(f"{bench.name:<28} | {bench.description}")
        return 0

    threshold = DEFAULT_THRESHOLD if args.threshold is None else args.threshold
    try:
        if args.verify_parity:
            from .bench import render_parity_text, verify_kernel_pair

            report = verify_kernel_pair(scale=args.scale)
            print(render_parity_text(report))
            return 0 if report.ok else 1

        if args.verify_shard_parity:
            from .bench import render_shard_parity_text, verify_sharded_pair

            shard_report = verify_sharded_pair(scale=args.scale)
            print(render_shard_parity_text(shard_report))
            return 0 if shard_report.ok else 1

        if args.verify_delivery_parity:
            from .bench import render_delivery_parity_text, verify_delivery_pair

            delivery_report = verify_delivery_pair(scale=args.scale)
            print(render_delivery_parity_text(delivery_report))
            return 0 if delivery_report.ok else 1

        if args.compare is not None:
            old_path, new_path = args.compare
            result = compare_documents(
                load_document(old_path), load_document(new_path), threshold=threshold
            )
            if args.format == "json":
                print(
                    json.dumps(
                        {
                            "threshold": result.threshold,
                            "noise_floor_s": result.noise_floor_s,
                            "exit_code": result.exit_code,
                            "deltas": [
                                {
                                    "name": d.name,
                                    "status": d.status,
                                    "ratio": d.ratio,
                                    "old_median_s": d.old_median_s,
                                    "new_median_s": d.new_median_s,
                                }
                                for d in result.deltas
                            ],
                        },
                        indent=2,
                    )
                )
            else:
                print(render_compare_text(result))
            return result.exit_code

        config = BenchRunConfig(
            scale=args.scale,
            seed=args.seed,
            repeats=args.repeats,
            warmup=args.warmup,
            filter=args.filter,
        )
        results = run_benchmarks(config)
        doc = build_document(results, config)
        if args.output:
            path = save_document(doc, args.output)
            print(f"wrote {path}", file=sys.stderr)
        if args.format == "json":
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            print(render_text(doc))
        return 0
    except ReproError as exc:
        print(f"idde bench: error: {exc}", file=sys.stderr)
        return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .errors import ReproError, SolverLookupError
    from .baselines import resolve_solver_name

    try:
        name = resolve_solver_name(args.solver)
    except SolverLookupError as exc:
        print(f"idde serve: error: {exc.args[0]}", file=sys.stderr)
        return 2

    from .request import SolveRequest
    from .serve import ServeConfig, ServeDaemon, SolverSession

    instance = IDDEInstance.generate(
        n=args.n, m=args.m, k=args.k, density=args.density, seed=args.seed
    )
    # warm_start=True: once a resident solution exists, bare POST
    # /v1/solve re-solves warm from it (events always re-solve warm).
    base = _request_for(args, name)
    request = SolveRequest(
        solver=base.solver,
        game_config=base.game_config,
        delivery_config=base.delivery_config,
        sharding=base.sharding,
        warm_start=True,
        rng=args.seed,
    )
    try:
        daemon = ServeDaemon(
            SolverSession(instance, request),
            ServeConfig(
                host=args.host,
                port=args.port,
                request_timeout_s=args.request_timeout,
                queue_limit=args.queue_limit,
            ),
        )
    except ReproError as exc:
        print(f"idde serve: error: {exc}", file=sys.stderr)
        return 2

    async def _run() -> int:
        await daemon.start()
        print(
            f"idde serve: listening on http://{args.host}:{daemon.port} "
            f"({instance}; solver {name}); SIGTERM drains gracefully",
            file=sys.stderr,
            flush=True,
        )
        return await daemon.run()

    return asyncio.run(_run())


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .errors import ReproError
    from .obs import load_trace, render_summary

    try:
        doc = load_trace(args.path)
    except ReproError as exc:
        print(f"idde trace: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(doc.summary_dict(), indent=2, sort_keys=True))
    else:
        print(render_summary(doc))
    return 0


_COMMANDS = {
    "solve": _cmd_solve,
    "sweep": _cmd_sweep,
    "reproduce": _cmd_reproduce,
    "fig1": _cmd_fig1,
    "theory": _cmd_theory,
    "dynamics": _cmd_dynamics,
    "replay": _cmd_replay,
    "gap": _cmd_gap,
    "lint": _cmd_lint,
    "bench": _cmd_bench,
    "trace": _cmd_trace,
    "serve": _cmd_serve,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from .logging_util import configure_logging

    configure_logging(args.verbose)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # report piped into `head` and the like: a closed pipe is not an
        # error worth a traceback, but stdout is unusable — detach it so
        # interpreter shutdown does not raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
