"""Logging plumbing for the package.

All modules obtain loggers through :func:`get_logger` (namespaced under
``repro.``); applications opt into output with :func:`configure_logging`.
The library itself never configures the root logger — standard
library-citizen behaviour.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "configure_logging"]

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the package namespace (``repro`` or ``repro.<name>``)."""
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure_logging(verbosity: int = 0) -> logging.Logger:
    """Attach a stderr handler to the package logger.

    ``verbosity``: 0 = WARNING, 1 = INFO, 2+ = DEBUG.  Idempotent — calling
    again only adjusts the level.
    """
    logger = get_logger()
    level = (
        logging.WARNING
        if verbosity <= 0
        else logging.INFO
        if verbosity == 1
        else logging.DEBUG
    )
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    for handler in logger.handlers:
        handler.setLevel(level)
    return logger
