"""Persistence: save and load scenarios, topologies, instances, strategies.

Reproducibility artifacts: a trial's exact instance and the profiles a
solver produced can be serialised to a single ``.npz`` file and reloaded
bit-exactly — the format every array-backed object in this package
round-trips through.  JSON is deliberately not used for the bulk arrays
(lossy/verbose); a small JSON header inside the archive carries scalars.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .config import RadioConfig
from .core.instance import IDDEInstance
from .core.profiles import AllocationProfile, DeliveryProfile
from .core.strategy import IDDEStrategy
from .errors import DatasetError
from .topology.graph import EdgeTopology
from .types import Scenario

__all__ = [
    "save_instance",
    "load_instance",
    "save_strategy",
    "load_strategy",
    "save_json",
    "load_json",
    "save_jsonl",
    "load_jsonl",
]

_FORMAT_VERSION = 1


def _radio_to_dict(cfg: RadioConfig) -> dict:
    return {
        "eta": cfg.eta,
        "loss_exponent": cfg.loss_exponent,
        "bandwidth": cfg.bandwidth,
        "noise_dbm": cfg.noise_dbm,
        "channels_per_server": cfg.channels_per_server,
        "min_distance": cfg.min_distance,
    }


def _radio_from_dict(d: dict) -> RadioConfig:
    return RadioConfig(**d)


def save_instance(instance: IDDEInstance, path: str | Path) -> Path:
    """Serialise a full instance (scenario + topology + radio) to ``.npz``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    sc = instance.scenario
    topo = instance.topology
    header = {
        "format_version": _FORMAT_VERSION,
        "kind": "instance",
        "radio": _radio_to_dict(instance.radio),
        "cloud_speed": topo.cloud_speed,
        "has_gain_override": instance.gain_override is not None,
    }
    arrays = {
        "header": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        "server_xy": sc.server_xy,
        "radius": sc.radius,
        "storage": sc.storage,
        "channels": sc.channels,
        "user_xy": sc.user_xy,
        "power": sc.power,
        "rmax": sc.rmax,
        "sizes": sc.sizes,
        "requests": sc.requests,
        "links": topo.links,
        "speeds": topo.speeds,
    }
    if instance.gain_override is not None:
        arrays["gain_override"] = instance.gain_override
    np.savez_compressed(path, **arrays)
    return path


def _read_header(data: np.lib.npyio.NpzFile, expected_kind: str) -> dict:
    try:
        header = json.loads(bytes(data["header"]).decode("utf-8"))
    except KeyError as exc:
        raise DatasetError("missing header; not a repro archive") from exc
    if header.get("format_version") != _FORMAT_VERSION:
        raise DatasetError(
            f"unsupported format version {header.get('format_version')!r}"
        )
    if header.get("kind") != expected_kind:
        raise DatasetError(
            f"archive holds a {header.get('kind')!r}, expected {expected_kind!r}"
        )
    return header


def load_instance(path: str | Path) -> IDDEInstance:
    """Reload an instance saved by :func:`save_instance`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such file: {path}")
    with np.load(path) as data:
        header = _read_header(data, "instance")
        scenario = Scenario(
            server_xy=data["server_xy"],
            radius=data["radius"],
            storage=data["storage"],
            channels=data["channels"],
            user_xy=data["user_xy"],
            power=data["power"],
            rmax=data["rmax"],
            sizes=data["sizes"],
            requests=data["requests"],
        )
        topology = EdgeTopology(
            n=scenario.n_servers,
            links=data["links"],
            speeds=data["speeds"],
            cloud_speed=float(header["cloud_speed"]),
        )
        gain = data["gain_override"] if header["has_gain_override"] else None
        return IDDEInstance(
            scenario,
            topology,
            _radio_from_dict(header["radio"]),
            gain_override=gain,
        )


def save_json(obj: dict, path: str | Path) -> Path:
    """Write a JSON document with stable key order and a trailing newline.

    Small structured artifacts (benchmark trajectories, comparison
    reports) go through JSON rather than ``.npz``: they hold scalars and
    short lists, and diffs of committed artifacts should be readable.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(obj, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def load_json(path: str | Path) -> dict:
    """Read a JSON document written by :func:`save_json`.

    Raises :class:`~repro.errors.DatasetError` when the file is missing,
    unparseable, or does not hold a JSON object at the top level.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such file: {path}")
    try:
        obj = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DatasetError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise DatasetError(f"{path} holds a {type(obj).__name__}, expected an object")
    return obj


def save_jsonl(records: list[dict], path: str | Path) -> Path:
    """Write a JSON-Lines document: one compact object per line.

    Line-oriented artifacts (IDDE-Trace documents) stream through standard
    tooling without loading the whole file; keys are sorted per line so
    committed samples diff cleanly.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = []
    for i, record in enumerate(records):
        if not isinstance(record, dict):
            raise DatasetError(
                f"JSONL record {i} is a {type(record).__name__}, expected an object"
            )
        lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
    path.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return path


def load_jsonl(path: str | Path) -> list[dict]:
    """Read a JSON-Lines document written by :func:`save_jsonl`.

    Raises :class:`~repro.errors.DatasetError` with the offending line
    number when the file is missing, a line is unparseable, or a line does
    not hold a JSON object.  Blank lines are tolerated (trailing newline).
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such file: {path}")
    records: list[dict] = []
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise DatasetError(f"{path}:{lineno} is not valid JSON: {exc}") from exc
        if not isinstance(obj, dict):
            raise DatasetError(
                f"{path}:{lineno} holds a {type(obj).__name__}, expected an object"
            )
        records.append(obj)
    return records


def save_strategy(strategy: IDDEStrategy, path: str | Path) -> Path:
    """Serialise a solver's output profiles and headline metrics."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "format_version": _FORMAT_VERSION,
        "kind": "strategy",
        "solver": strategy.solver,
        "r_avg": strategy.r_avg,
        "l_avg_ms": strategy.l_avg_ms,
        "wall_time_s": strategy.wall_time_s,
    }
    np.savez_compressed(
        path,
        header=np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
        alloc_server=strategy.allocation.server,
        alloc_channel=strategy.allocation.channel,
        placed=strategy.delivery.placed,
    )
    return path


def load_strategy(path: str | Path) -> IDDEStrategy:
    """Reload a strategy saved by :func:`save_strategy`.

    ``extras`` are not persisted (they may hold arbitrary objects); the
    loaded strategy carries an empty dictionary.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such file: {path}")
    with np.load(path) as data:
        header = _read_header(data, "strategy")
        return IDDEStrategy(
            solver=str(header["solver"]),
            allocation=AllocationProfile(data["alloc_server"], data["alloc_channel"]),
            delivery=DeliveryProfile(data["placed"]),
            r_avg=float(header["r_avg"]),
            l_avg_ms=float(header["l_avg_ms"]),
            wall_time_s=float(header["wall_time_s"]),
            extras={},
        )
