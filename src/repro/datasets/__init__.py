"""Dataset substrate: EUA-style edge-computing scenario pools.

The paper draws its edge-server and user positions from the public EUA
dataset (125 servers / 816 users in the Melbourne CBD) and randomises every
other quantity per Section 4.2.  This subpackage provides:

* :mod:`repro.datasets.melbourne` — the CBD-like region constants;
* :mod:`repro.datasets.synthetic` — spatial placement generators;
* :mod:`repro.datasets.eua` — the :class:`~repro.datasets.eua.EuaPool`
  (a full 125/816 pool), a seeded synthetic-EUA generator, a CSV loader
  for the real dataset when available offline, and scenario sampling;
* :mod:`repro.datasets.workload` — request matrices, data sizes, storage
  and power provisioning.
"""

from .eua import EuaPool, load_eua_csv, sample_scenario, synthetic_eua, synthetic_metro
from .melbourne import CBD_REGION, EUA_SERVER_COUNT, EUA_USER_COUNT
from .synthetic import place_servers, place_users
from .workload import (
    draw_data_sizes,
    draw_powers,
    draw_rate_caps,
    draw_storage,
    request_matrix,
    zipf_weights,
)

__all__ = [
    "EuaPool",
    "synthetic_eua",
    "synthetic_metro",
    "load_eua_csv",
    "sample_scenario",
    "CBD_REGION",
    "EUA_SERVER_COUNT",
    "EUA_USER_COUNT",
    "place_servers",
    "place_users",
    "request_matrix",
    "zipf_weights",
    "draw_data_sizes",
    "draw_storage",
    "draw_powers",
    "draw_rate_caps",
]
