"""EUA-style scenario pool: synthetic equivalent of the public EUA dataset.

The paper samples its per-trial scenarios from an extract of the EUA dataset
(125 edge servers / 816 users, Melbourne CBD).  Offline we reproduce the pool
with :func:`synthetic_eua` — a seeded generator matching the EUA statistics
(jittered-grid base stations, 100–150 m radii, users covered by at least one
server) — and, when the real CSV files are present on disk,
:func:`load_eua_csv` builds the identical pool structure from them.

Per-trial sampling (:func:`sample_scenario`) mirrors Section 4.2/4.3: choose
``N`` servers and ``M`` users from the pool, draw storage, powers, rate caps,
data sizes and the request matrix fresh for the trial.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..config import RadioConfig, WorkloadConfig
from ..errors import DatasetError, ScenarioError
from ..geometry import coverage_matrix
from ..rng import ensure_rng
from ..types import Scenario
from .melbourne import CBD_REGION, COVERAGE_RADIUS_RANGE, EUA_SERVER_COUNT, EUA_USER_COUNT
from .synthetic import place_servers, place_users
from .workload import (
    draw_data_sizes,
    draw_powers,
    draw_rate_caps,
    draw_storage,
    request_matrix,
)

__all__ = ["EuaPool", "synthetic_eua", "synthetic_metro", "load_eua_csv", "sample_scenario"]


@dataclass(frozen=True)
class EuaPool:
    """A pool of candidate server and user positions to sample trials from.

    Attributes
    ----------
    server_xy : ``(P, 2)`` candidate server positions (metres).
    radius : ``(P,)`` coverage radii (metres).
    user_xy : ``(Q, 2)`` candidate user positions (metres).
    name : provenance label (``"synthetic-eua"`` or a file path).
    """

    server_xy: np.ndarray
    radius: np.ndarray
    user_xy: np.ndarray
    name: str = "synthetic-eua"

    def __post_init__(self) -> None:
        if self.server_xy.ndim != 2 or self.server_xy.shape[1] != 2:
            raise DatasetError(f"server_xy must be (P, 2), got {self.server_xy.shape}")
        if self.user_xy.ndim != 2 or self.user_xy.shape[1] != 2:
            raise DatasetError(f"user_xy must be (Q, 2), got {self.user_xy.shape}")
        if self.radius.shape != (self.server_xy.shape[0],):
            raise DatasetError(
                f"radius shape {self.radius.shape} mismatches {self.server_xy.shape[0]} servers"
            )
        if np.any(self.radius <= 0):
            raise DatasetError("all coverage radii must be positive")

    @property
    def n_servers(self) -> int:
        return self.server_xy.shape[0]

    @property
    def n_users(self) -> int:
        return self.user_xy.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EuaPool({self.name!r}, servers={self.n_servers}, users={self.n_users})"


def synthetic_eua(
    seed: int = 0,
    *,
    n_servers: int = EUA_SERVER_COUNT,
    n_users: int = EUA_USER_COUNT,
    placement: str = "grid",
) -> EuaPool:
    """Generate a synthetic EUA-equivalent pool (125 servers / 816 users).

    Deterministic in ``seed``.  Server sites follow a jittered grid over the
    CBD-like region with radii in 100–150 m; users are placed inside the
    coverage union, as in the real dataset.
    """
    rng = ensure_rng(seed)
    server_xy, radius = place_servers(
        CBD_REGION, n_servers, rng, placement=placement, radius_range=COVERAGE_RADIUS_RANGE
    )
    user_xy = place_users(server_xy, radius, n_users, rng)
    return EuaPool(server_xy=server_xy, radius=radius, user_xy=user_xy, name="synthetic-eua")


def synthetic_metro(
    seed: int = 0,
    *,
    districts: int = 6,
    gap: float = 800.0,
    n_servers: int = EUA_SERVER_COUNT,
    n_users: int = EUA_USER_COUNT,
    placement: str = "grid",
) -> EuaPool:
    """A metropolitan pool: several CBD-sized districts tiled along x.

    Each district is an independent :func:`synthetic_eua` pool (seeded
    ``seed * 1000 + d``) offset by the CBD width plus ``gap`` metres.  With
    the default ``gap`` well above twice the maximum coverage radius, no
    coverage circle spans two districts, so the interference graph of any
    sampled scenario decomposes into per-district components — the
    city-scale regime :mod:`repro.sharding` targets.  Deterministic in
    ``seed``.
    """
    if districts < 1:
        raise DatasetError(f"districts must be >= 1, got {districts}")
    if gap < 0:
        raise DatasetError(f"gap must be >= 0, got {gap}")
    width = CBD_REGION.width
    server_xy, radius, user_xy = [], [], []
    for d in range(districts):
        district = synthetic_eua(
            seed * 1000 + d,
            n_servers=n_servers,
            n_users=n_users,
            placement=placement,
        )
        offset = np.array([d * (width + gap), 0.0])
        server_xy.append(district.server_xy + offset)
        radius.append(district.radius)
        user_xy.append(district.user_xy + offset)
    return EuaPool(
        server_xy=np.concatenate(server_xy),
        radius=np.concatenate(radius),
        user_xy=np.concatenate(user_xy),
        name=f"synthetic-metro-{districts}",
    )


def load_eua_csv(
    servers_csv: str | Path,
    users_csv: str | Path,
    *,
    radius_range: tuple[float, float] = COVERAGE_RADIUS_RANGE,
    seed: int = 0,
) -> EuaPool:
    """Load a pool from real EUA dataset CSV exports.

    Expects the upstream schema: servers with ``LATITUDE``/``LONGITUDE``
    columns, users likewise (case-insensitive).  Coordinates are projected
    onto a local tangent plane in metres anchored at the server centroid.
    Radii (absent from the raw data) are drawn from ``radius_range`` with
    the given seed, matching common EUA usage.
    """
    server_ll = _read_latlon(servers_csv)
    user_ll = _read_latlon(users_csv)
    if len(server_ll) == 0:
        raise DatasetError(f"no server rows in {servers_csv}")
    anchor = server_ll.mean(axis=0)
    server_xy = _project(server_ll, anchor)
    user_xy = _project(user_ll, anchor)
    rng = ensure_rng(seed)
    radius = rng.uniform(radius_range[0], radius_range[1], size=len(server_xy))
    return EuaPool(
        server_xy=server_xy,
        radius=radius,
        user_xy=user_xy,
        name=f"eua-csv:{Path(servers_csv).name}",
    )


def _read_latlon(path: str | Path) -> np.ndarray:
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"dataset file not found: {path}")
    rows: list[tuple[float, float]] = []
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise DatasetError(f"{path} has no header row")
        cols = {name.strip().lower(): name for name in reader.fieldnames}
        try:
            lat_col, lon_col = cols["latitude"], cols["longitude"]
        except KeyError as exc:
            raise DatasetError(
                f"{path} lacks LATITUDE/LONGITUDE columns (found {reader.fieldnames})"
            ) from exc
        for row in reader:
            try:
                rows.append((float(row[lat_col]), float(row[lon_col])))
            except (TypeError, ValueError) as exc:
                raise DatasetError(f"bad coordinate row in {path}: {row!r}") from exc
    return np.asarray(rows, dtype=float).reshape(-1, 2)


def _project(latlon: np.ndarray, anchor: np.ndarray) -> np.ndarray:
    """Equirectangular projection to metres around ``anchor`` (lat, lon)."""
    earth_r = 6_371_000.0
    lat0 = np.deg2rad(anchor[0])
    dlat = np.deg2rad(latlon[:, 0] - anchor[0])
    dlon = np.deg2rad(latlon[:, 1] - anchor[1])
    x = earth_r * dlon * np.cos(lat0)
    y = earth_r * dlat
    return np.column_stack([x, y])


def sample_scenario(
    pool: EuaPool,
    n: int,
    m: int,
    k: int,
    rng: np.random.Generator | int | None = None,
    *,
    workload: WorkloadConfig | None = None,
    radio: RadioConfig | None = None,
) -> Scenario:
    """Sample one trial scenario from a pool, per Section 4.2/4.3.

    Picks ``n`` distinct servers and then ``m`` users covered by the chosen
    servers (resampling positions inside the chosen coverage union if the
    pool does not contain enough covered candidates — the EUA extract always
    does at the paper's parameter ranges).  Storage, powers, rate caps, data
    sizes and requests are drawn fresh per trial.
    """
    rng = ensure_rng(rng)
    workload = workload or WorkloadConfig()
    radio = radio or RadioConfig()
    if n <= 0 or n > pool.n_servers:
        raise ScenarioError(f"n={n} out of range for pool with {pool.n_servers} servers")
    if m < 0:
        raise ScenarioError(f"negative m={m}")
    if k <= 0:
        raise ScenarioError(f"k={k} must be positive")

    servers = rng.choice(pool.n_servers, size=n, replace=False)
    server_xy = pool.server_xy[servers]
    radius = pool.radius[servers]

    cover = coverage_matrix(server_xy, radius, pool.user_xy)
    covered = np.flatnonzero(cover.any(axis=0))
    if len(covered) >= m:
        chosen = rng.choice(covered, size=m, replace=False)
        user_xy = pool.user_xy[chosen]
    else:
        # Top up with fresh positions inside the chosen coverage union.
        extra = m - len(covered)
        fresh = place_users(server_xy, radius, extra, rng)
        user_xy = np.concatenate([pool.user_xy[covered], fresh], axis=0)

    return Scenario(
        server_xy=server_xy,
        radius=radius,
        storage=draw_storage(n, rng, workload),
        channels=radio.draw_channels(n, rng),
        user_xy=user_xy,
        power=draw_powers(m, rng, workload),
        rmax=draw_rate_caps(m, rng, workload),
        sizes=draw_data_sizes(k, rng, workload),
        requests=request_matrix(m, k, rng, workload),
    )
