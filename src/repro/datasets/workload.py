"""Workload generation: requests, data sizes, storage, powers, rate caps.

All quantities follow Section 4.2 of the paper:

* data sizes drawn uniformly from {30, 60, 90} MB;
* per-server reserved storage drawn uniformly from [30, 300] MB;
* per-user transmit power drawn uniformly from [1, 5] W;
* request pattern ``ζ_{j,k}``: the paper specifies only "requested data";
  we default to one request per user with Zipf-distributed popularity,
  the standard content-popularity model for edge caching, configurable via
  :class:`~repro.config.WorkloadConfig`.
"""

from __future__ import annotations

import numpy as np

from ..config import WorkloadConfig
from ..errors import ScenarioError

__all__ = [
    "zipf_weights",
    "request_matrix",
    "draw_data_sizes",
    "draw_storage",
    "draw_powers",
    "draw_rate_caps",
]


def zipf_weights(k: int, exponent: float) -> np.ndarray:
    """Normalised Zipf popularity weights over ``k`` items.

    ``w_r ∝ 1 / r^exponent`` for rank ``r = 1..k``; ``exponent = 0`` gives
    the uniform distribution.
    """
    if k <= 0:
        raise ScenarioError(f"need at least one data item, got k={k}")
    ranks = np.arange(1, k + 1, dtype=float)
    w = ranks**-exponent
    return w / w.sum()


def request_matrix(
    m: int,
    k: int,
    rng: np.random.Generator,
    cfg: WorkloadConfig | None = None,
) -> np.ndarray:
    """Sample the boolean request matrix ``ζ`` of shape ``(m, k)``.

    Each user requests ``cfg.requests_per_user`` *distinct* items drawn
    without replacement from the Zipf popularity distribution.  When the
    catalogue is smaller than the request count, users request everything.
    """
    cfg = cfg or WorkloadConfig()
    if m < 0:
        raise ScenarioError(f"negative user count {m}")
    if k <= 0:
        raise ScenarioError(f"need at least one data item, got k={k}")
    zeta = np.zeros((m, k), dtype=bool)
    per_user = min(cfg.requests_per_user, k)
    weights = zipf_weights(k, cfg.zipf_exponent)
    for j in range(m):
        picks = rng.choice(k, size=per_user, replace=False, p=weights)
        zeta[j, picks] = True
    return zeta


def draw_data_sizes(
    k: int, rng: np.random.Generator, cfg: WorkloadConfig | None = None
) -> np.ndarray:
    """Draw ``k`` data sizes uniformly from the configured size menu (MB)."""
    cfg = cfg or WorkloadConfig()
    if k <= 0:
        raise ScenarioError(f"need at least one data item, got k={k}")
    menu = np.asarray(cfg.data_sizes, dtype=float)
    return menu[rng.integers(0, len(menu), size=k)]


def draw_storage(
    n: int, rng: np.random.Generator, cfg: WorkloadConfig | None = None
) -> np.ndarray:
    """Draw per-server reserved storage ``A_i`` uniformly (MB)."""
    cfg = cfg or WorkloadConfig()
    if n <= 0:
        raise ScenarioError(f"need at least one server, got n={n}")
    lo, hi = cfg.storage_range
    return rng.uniform(lo, hi, size=n)


def draw_powers(
    m: int, rng: np.random.Generator, cfg: WorkloadConfig | None = None
) -> np.ndarray:
    """Draw per-user transmit powers ``p_j`` uniformly (Watts)."""
    cfg = cfg or WorkloadConfig()
    lo, hi = cfg.power_range
    return rng.uniform(lo, hi, size=max(m, 0))


def draw_rate_caps(
    m: int, rng: np.random.Generator, cfg: WorkloadConfig | None = None
) -> np.ndarray:
    """Draw per-user Shannon rate caps ``R_{j,max}`` uniformly (MB/s)."""
    cfg = cfg or WorkloadConfig()
    lo, hi = cfg.rmax_range
    return rng.uniform(lo, hi, size=max(m, 0))
