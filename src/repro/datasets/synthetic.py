"""Spatial placement generators for servers and users.

Two placement families are provided:

* ``"grid"`` — jittered grid, reproducing the roughly regular cellular
  layout of real base stations (EUA's dominant pattern);
* ``"uniform"`` — homogeneous Poisson-like placement, useful for ablations
  on coverage-overlap sensitivity.

Users are always sampled inside the union of coverage discs, matching the
EUA property that every user is covered by at least one server.
"""

from __future__ import annotations

import numpy as np

from ..errors import ScenarioError
from ..geometry import (
    Region,
    jittered_grid,
    sample_points_in_coverage,
    sample_points_uniform,
)

__all__ = ["place_servers", "place_users"]

_PLACEMENTS = ("grid", "uniform")


def place_servers(
    region: Region,
    n: int,
    rng: np.random.Generator,
    *,
    placement: str = "grid",
    radius_range: tuple[float, float] = (100.0, 150.0),
) -> tuple[np.ndarray, np.ndarray]:
    """Place ``n`` edge servers in ``region``.

    Returns
    -------
    (positions, radii)
        ``(n, 2)`` positions in metres and ``(n,)`` coverage radii drawn
        uniformly from ``radius_range``.
    """
    if n <= 0:
        raise ScenarioError(f"cannot place {n} servers")
    lo, hi = radius_range
    if not (0 < lo <= hi):
        raise ScenarioError(f"bad radius_range {radius_range}")
    if placement == "grid":
        xy = jittered_grid(region, n, rng)
    elif placement == "uniform":
        xy = sample_points_uniform(region, n, rng)
    else:
        raise ScenarioError(f"placement must be one of {_PLACEMENTS}, got {placement!r}")
    radii = rng.uniform(lo, hi, size=n)
    return xy, radii


def place_users(
    server_xy: np.ndarray,
    radius: np.ndarray,
    m: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Place ``m`` users, each inside at least one server's coverage disc."""
    if m < 0:
        raise ScenarioError(f"cannot place {m} users")
    if m == 0:
        return np.empty((0, 2), dtype=float)
    return sample_points_in_coverage(server_xy, radius, m, rng)
