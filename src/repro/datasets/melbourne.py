"""Melbourne-CBD-like region constants matching the EUA dataset footprint.

The EUA dataset covers roughly the Melbourne central business district — an
area of about 2.2 km × 1.6 km — with 125 base stations whose coverage radii
the edge-computing literature standardises to 100–150 m.  We model the region
on a local tangent plane in metres.
"""

from __future__ import annotations

from ..geometry import Region

__all__ = [
    "CBD_REGION",
    "EUA_SERVER_COUNT",
    "EUA_USER_COUNT",
    "COVERAGE_RADIUS_RANGE",
]

#: Planar stand-in for the Melbourne CBD footprint (metres).
CBD_REGION = Region(0.0, 0.0, 2200.0, 1600.0)

#: Number of edge servers in the EUA extract used by the paper.
EUA_SERVER_COUNT = 125

#: Number of users in the EUA extract used by the paper.
EUA_USER_COUNT = 816

#: Coverage radius range in metres.  The raw EUA convention is 100–150 m,
#: but the paper's experiments sample only N = 20..50 of the 125 sites at a
#: time while still exhibiting multi-server coverage (its Fig. 2 users and
#: the interference model both require overlapping cells).  We follow the
#: macro-cell convention of the companion interference papers (e.g. Cui et
#: al., "Interference-aware SaaS user allocation game for edge computing")
#: and use 250–350 m so a user at the default N = 30 sees ~2–3 candidate
#: servers, matching the allocation-freedom regime the IDDE-U game needs.
COVERAGE_RADIUS_RANGE = (250.0, 350.0)
