"""Shannon data rate (Eqs. 3–4): ``R = B · log2(1 + SINR)`` with a cap.

The cap ``R_{j,max}`` models the Shannon capacity limit of the user's mobile
link; Eq. (4) takes the minimum of the cap and the achieved rate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["shannon_rate", "capped_rate"]


def shannon_rate(bandwidth: float | np.ndarray, sinr: np.ndarray) -> np.ndarray:
    """``B · log2(1 + SINR)``, elementwise; accepts scalars or arrays.

    Uses ``log1p`` for accuracy at small SINR.  Negative SINR inputs are
    clamped to zero (they can only arise from floating-point cancellation
    in callers, never from the model itself).
    """
    s = np.maximum(np.asarray(sinr, dtype=float), 0.0)
    return np.asarray(bandwidth, dtype=float) * np.log1p(s) / np.log(2.0)


def capped_rate(
    bandwidth: float | np.ndarray,
    sinr: np.ndarray,
    rmax: float | np.ndarray,
) -> np.ndarray:
    """Eq. (4): ``min(R_max, B·log2(1+SINR))`` elementwise."""
    return np.minimum(np.asarray(rmax, dtype=float), shannon_rate(bandwidth, sinr))
