"""The vectorised SINR engine: incremental interference bookkeeping.

This is the inner kernel of the IDDE-U game.  For one user ``j`` evaluating
a move, the denominator of Eq. (2) decomposes into a *channel-indexed*
aggregate that is independent of the target server:

``den(i, x) = Σ_{o ∈ V_j} g_{o,j} · P'[o, x] + ω``

where ``P'[o, x]`` is the total transmit power allocated to channel ``x`` of
server ``o`` excluding ``j`` itself.  Both the intra-cell term (``o = i``)
and the inter-cell term (``o ≠ i``) carry the same gain-to-``j`` structure,
so one matrix–vector product per user yields the interference for *every*
candidate channel at once, and the SINR for every candidate ``(i, x)`` is a
rank-1 outer structure on top of it.  The engine maintains the per-channel
power table ``P[N, X]`` incrementally under assign/unassign, making a
best-response evaluation ``O(|V_j| · X)``.

The *benefit* of Eq. (12) is the interference-normalised received power with
the user's own power included in the intra-cell sum and no noise term:

``β(i, x) = g_{i,j} p_j / (W_j[x] + g_{i,j} p_j)``

which orders candidate channels identically to the SINR when the noise is
negligible (it is, at −174 dBm) but is exactly the paper's driving function.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import RadioConfig
from ..errors import AllocationError, CoverageError
from ..types import Scenario
from .channel import gain_matrix
from .rate import capped_rate, shannon_rate

__all__ = ["SinrEngine", "CandidateView"]

UNALLOCATED = -1


@dataclass(frozen=True)
class CandidateView:
    """The vectorised evaluation of one user's candidate moves.

    Attributes
    ----------
    servers : ``(S,)`` covering server indices (the paper's ``V_j``).
    valid : ``(S, X)`` mask of existing channels per covering server.
    sinr : ``(S, X)`` SINR for allocating the user to each candidate.
    rate : ``(S, X)`` capped data rate for each candidate (MB/s).
    benefit : ``(S, X)`` Eq. (12) benefit for each candidate.
    """

    servers: np.ndarray
    valid: np.ndarray
    sinr: np.ndarray
    rate: np.ndarray
    benefit: np.ndarray

    def best(self, metric: str = "benefit") -> tuple[int, int, float]:
        """Return ``(server, channel, value)`` of the best valid candidate.

        Raises
        ------
        CoverageError
            If the user has no covering server (no candidates).
        """
        values = getattr(self, metric)
        if values.size == 0:
            raise CoverageError("user has no covering server")
        masked = np.where(self.valid, values, -np.inf)
        flat = int(np.argmax(masked))
        s, x = divmod(flat, masked.shape[1])
        return int(self.servers[s]), int(x), float(masked[s, x])


class SinrEngine:
    """Mutable interference state over a fixed :class:`Scenario`.

    The engine owns the allocation arrays (``server[j]``, ``channel[j]``,
    with −1 meaning unallocated) and the per-channel power table, and
    exposes: single-user candidate evaluation (:meth:`candidates`), global
    rate evaluation (:meth:`rates`), and incremental mutation
    (:meth:`assign`, :meth:`unassign`, :meth:`move`).

    Parameters
    ----------
    scenario:
        The problem entities.
    cfg:
        Radio parameters; channel counts come from the scenario (which was
        itself provisioned from a :class:`~repro.config.RadioConfig`).
    gain:
        Optional ``(N, M)`` gain-matrix override (e.g. a shadowed model
        from :mod:`repro.radio.fading`); defaults to the deterministic
        power law of :func:`~repro.radio.channel.gain_matrix`.
    """

    def __init__(
        self,
        scenario: Scenario,
        cfg: RadioConfig | None = None,
        *,
        gain: np.ndarray | None = None,
    ):
        self.scenario = scenario
        self.cfg = cfg or RadioConfig()
        if gain is None:
            self.gain = gain_matrix(scenario.server_xy, scenario.user_xy, self.cfg)
        else:
            gain = np.asarray(gain, dtype=float)
            if gain.shape != (scenario.n_servers, scenario.n_users):
                raise AllocationError(
                    f"gain override must be (N, M) = "
                    f"{(scenario.n_servers, scenario.n_users)}, got {gain.shape}"
                )
            if np.any(gain <= 0):
                raise AllocationError("gain override must be strictly positive")
            self.gain = gain.copy()
        self.coverage = scenario.coverage
        self.covering = scenario.covering_servers
        self.power = scenario.power
        self.noise = self.cfg.noise_watts
        self.bandwidth = self.cfg.bandwidth
        n, x = scenario.n_servers, max(scenario.max_channels, 1)
        self.n_channels = x
        #: total allocated power per (server, channel)
        self.channel_power = np.zeros((n, x), dtype=float)
        #: number of users per (server, channel)
        self.channel_count = np.zeros((n, x), dtype=np.int64)
        self.alloc_server = np.full(scenario.n_users, UNALLOCATED, dtype=np.int64)
        self.alloc_channel = np.full(scenario.n_users, UNALLOCATED, dtype=np.int64)
        self._channel_valid = scenario.channel_mask

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def assign(self, j: int, server: int, channel: int) -> None:
        """Allocate user ``j`` to ``(server, channel)``.

        Enforces Eq. (1): the server must cover the user, and the channel
        must exist on the server.  The user must currently be unallocated
        (use :meth:`move` to relocate).
        """
        self._check_user(j)
        if self.alloc_server[j] != UNALLOCATED:
            raise AllocationError(f"user {j} is already allocated; use move()")
        if not self.coverage[server, j]:
            raise CoverageError(f"server {server} does not cover user {j}")
        if not (0 <= channel < self.scenario.channels[server]):
            raise AllocationError(
                f"channel {channel} out of range for server {server} "
                f"({self.scenario.channels[server]} channels)"
            )
        self.alloc_server[j] = server
        self.alloc_channel[j] = channel
        self.channel_power[server, channel] += self.power[j]
        self.channel_count[server, channel] += 1

    def unassign(self, j: int) -> None:
        """Deallocate user ``j`` (no-op if already unallocated)."""
        self._check_user(j)
        i, x = self.alloc_server[j], self.alloc_channel[j]
        if i == UNALLOCATED:
            return
        self.channel_power[i, x] -= self.power[j]
        self.channel_count[i, x] -= 1
        # Guard against float drift accumulating across many moves.
        if self.channel_count[i, x] == 0:
            self.channel_power[i, x] = 0.0
        self.alloc_server[j] = UNALLOCATED
        self.alloc_channel[j] = UNALLOCATED

    def move(self, j: int, server: int, channel: int) -> None:
        """Relocate user ``j`` to ``(server, channel)`` atomically."""
        self.unassign(j)
        self.assign(j, server, channel)

    def reset(self) -> None:
        """Return to the all-unallocated state."""
        self.channel_power.fill(0.0)
        self.channel_count.fill(0)
        self.alloc_server.fill(UNALLOCATED)
        self.alloc_channel.fill(UNALLOCATED)

    def load_profile(self, server: np.ndarray, channel: np.ndarray) -> None:
        """Replace the full allocation state from profile arrays."""
        server = np.asarray(server, dtype=np.int64)
        channel = np.asarray(channel, dtype=np.int64)
        if server.shape != (self.scenario.n_users,) or channel.shape != server.shape:
            raise AllocationError("profile arrays must both have shape (M,)")
        self.reset()
        for j in np.flatnonzero(server != UNALLOCATED):
            self.assign(int(j), int(server[j]), int(channel[j]))

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def interference_profile(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-channel interference aggregate ``W_j[x]`` for user ``j``.

        Returns ``(servers, W)`` where ``servers`` is ``V_j`` and ``W`` has
        shape ``(X,)``: the gain-weighted power on each channel index summed
        over the covering servers, excluding ``j``'s own contribution.
        """
        self._check_user(j)
        servers = self.covering[j]
        if len(servers) == 0:
            return servers, np.zeros(self.n_channels)
        g = self.gain[servers, j]
        p = self.channel_power[servers, :]
        w = g @ p
        i, x = self.alloc_server[j], self.alloc_channel[j]
        if i != UNALLOCATED:
            w[x] -= self.gain[i, j] * self.power[j]
            # Clamp tiny negative residue from float cancellation.
            if w[x] < 0.0:
                w[x] = 0.0
        return servers, w

    def candidates(self, j: int) -> CandidateView:
        """Evaluate every candidate ``(server, channel)`` for user ``j``."""
        servers, w = self.interference_profile(j)
        s = len(servers)
        if s == 0:
            empty = np.empty((0, self.n_channels))
            return CandidateView(
                servers=servers,
                valid=np.empty((0, self.n_channels), dtype=bool),
                sinr=empty,
                rate=empty,
                benefit=empty,
            )
        signal = (self.gain[servers, j] * self.power[j])[:, None]  # (S, 1)
        den = w[None, :] + self.noise  # (1, X) broadcast to (S, X)
        sinr = signal / den
        rate = capped_rate(self.bandwidth, sinr, self.scenario.rmax[j])
        benefit = signal / (w[None, :] + signal)
        valid = self._channel_valid[servers, : self.n_channels]
        return CandidateView(servers=servers, valid=valid, sinr=sinr, rate=rate, benefit=benefit)

    def user_sinr(self, j: int) -> float:
        """SINR of user ``j`` at its current allocation (0 if unallocated)."""
        self._check_user(j)
        i, x = self.alloc_server[j], self.alloc_channel[j]
        if i == UNALLOCATED:
            return 0.0
        _, w = self.interference_profile(j)
        return float(self.gain[i, j] * self.power[j] / (w[x] + self.noise))

    def user_rate(self, j: int) -> float:
        """Eq. (4) data rate of user ``j`` at its current allocation."""
        i = self.alloc_server[j]
        if i == UNALLOCATED:
            return 0.0
        return float(
            capped_rate(self.bandwidth, np.asarray(self.user_sinr(j)), self.scenario.rmax[j])
        )

    def user_benefit(self, j: int) -> float:
        """Eq. (12) benefit of user ``j`` at its current allocation."""
        self._check_user(j)
        i, x = self.alloc_server[j], self.alloc_channel[j]
        if i == UNALLOCATED:
            return 0.0
        _, w = self.interference_profile(j)
        signal = self.gain[i, j] * self.power[j]
        return float(signal / (w[x] + signal))

    def rates(self) -> np.ndarray:
        """Vectorised Eq. (4) rates for all users (``(M,)``, MB/s).

        Unallocated users contribute zero, matching the indicator in
        Eq. (4).
        """
        m = self.scenario.n_users
        out = np.zeros(m)
        alloc = np.flatnonzero(self.alloc_server != UNALLOCATED)
        if len(alloc) == 0:
            return out
        a = self.alloc_server[alloc]
        x = self.alloc_channel[alloc]
        # Gain-weighted channel power from every server to each user, on the
        # user's own channel index: (N, Ma) gather then a masked reduction
        # over the covering servers only.
        gw = self.gain[:, alloc] * self.coverage[:, alloc]  # (N, Ma)
        p_sel = self.channel_power[:, x]  # (N, Ma)
        w = np.einsum("nm,nm->m", gw, p_sel)
        own = self.gain[a, alloc] * self.power[alloc]
        w = np.maximum(w - own, 0.0)
        sinr = own / (w + self.noise)
        out[alloc] = capped_rate(self.bandwidth, sinr, self.scenario.rmax[alloc])
        return out

    def average_rate(self) -> float:
        """Eq. (5): mean over **all** M users (unallocated count as zero)."""
        m = self.scenario.n_users
        if m == 0:
            return 0.0
        return float(self.rates().sum() / m)

    def uncapped_rates(self) -> np.ndarray:
        """Shannon rates without the ``R_max`` cap (diagnostics)."""
        m = self.scenario.n_users
        out = np.zeros(m)
        for j in range(m):
            i = self.alloc_server[j]
            if i == UNALLOCATED:
                continue
            out[j] = float(shannon_rate(self.bandwidth, np.asarray(self.user_sinr(j))))
        return out

    # ------------------------------------------------------------------
    def users_on(self, server: int, channel: int) -> np.ndarray:
        """Indices of users allocated to ``(server, channel)``."""
        return np.flatnonzero(
            (self.alloc_server == server) & (self.alloc_channel == channel)
        )

    def _check_user(self, j: int) -> None:
        if not (0 <= j < self.scenario.n_users):
            raise AllocationError(f"user index {j} out of range [0, {self.scenario.n_users})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        allocated = int((self.alloc_server != UNALLOCATED).sum())
        return (
            f"SinrEngine(N={self.scenario.n_servers}, M={self.scenario.n_users}, "
            f"allocated={allocated})"
        )
