"""The vectorised SINR engine: incremental interference bookkeeping.

This is the inner kernel of the IDDE-U game.  For one user ``j`` evaluating
a move, the denominator of Eq. (2) decomposes into a *channel-indexed*
aggregate that is independent of the target server:

``den(i, x) = Σ_{o ∈ V_j} g_{o,j} · P'[o, x] + ω``

where ``P'[o, x]`` is the total transmit power allocated to channel ``x`` of
server ``o`` excluding ``j`` itself.  Both the intra-cell term (``o = i``)
and the inter-cell term (``o ≠ i``) carry the same gain-to-``j`` structure,
so one matrix–vector product per user yields the interference for *every*
candidate channel at once, and the SINR for every candidate ``(i, x)`` is a
rank-1 outer structure on top of it.  The engine maintains the per-channel
power table ``P[N, X]`` incrementally under assign/unassign, making a
best-response evaluation ``O(|V_j| · X)``.

The *benefit* of Eq. (12) is the interference-normalised received power with
the user's own power included in the intra-cell sum and no noise term:

``β(i, x) = g_{i,j} p_j / (W_j[x] + g_{i,j} p_j)``

which orders candidate channels identically to the SINR when the noise is
negligible (it is, at −174 dBm) but is exactly the paper's driving function.

Batched evaluation
------------------
The engine also exposes a *batched* path (:meth:`SinrEngine.batch_candidates`
/ :meth:`SinrEngine.batch_best_responses`) that evaluates every user's
candidate grid in one einsum pass over a padded covering-server tensor
``(M, Smax)`` built once per engine.  The per-user and batched paths are a
verified kernel pair: both reduce the interference aggregate over the *same*
padded row with ``np.einsum``, so the floats they produce are bit-for-bit
identical (padding contributes exact zeros and the reduction grouping is
length-determined) and best-response dynamics driven by either path take
identical move sequences.  Do not "simplify" the per-user reduction back to
``g @ p``: BLAS accumulates in a different order and the pair's bitwise
parity — asserted by ``tests/core/test_game_kernels.py`` and
``repro.bench.parity`` — would quietly degrade to approximate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import RadioConfig
from ..errors import AllocationError, CoverageError
from ..obs.tracer import NULL_TRACER, Tracer
from ..types import Scenario
from .channel import gain_matrix
from .rate import capped_rate, shannon_rate

__all__ = ["SinrEngine", "CandidateView", "BatchCandidateView", "BatchBestResponse"]

UNALLOCATED = -1


@dataclass(frozen=True)
class CandidateView:
    """The vectorised evaluation of one user's candidate moves.

    Attributes
    ----------
    servers : ``(S,)`` covering server indices (the paper's ``V_j``).
    valid : ``(S, X)`` mask of existing channels per covering server.
    sinr : ``(S, X)`` SINR for allocating the user to each candidate.
    rate : ``(S, X)`` capped data rate for each candidate (MB/s).
    benefit : ``(S, X)`` Eq. (12) benefit for each candidate.
    """

    servers: np.ndarray
    valid: np.ndarray
    sinr: np.ndarray
    rate: np.ndarray
    benefit: np.ndarray

    def best(self, metric: str = "benefit") -> tuple[int, int, float]:
        """Return ``(server, channel, value)`` of the best valid candidate.

        Raises
        ------
        CoverageError
            If the user has no covering server (no candidates).
        """
        values = getattr(self, metric)
        if values.size == 0:
            raise CoverageError("user has no covering server")
        masked = np.where(self.valid, values, -np.inf)
        flat = int(np.argmax(masked))
        s, x = divmod(flat, masked.shape[1])
        return int(self.servers[s]), int(x), float(masked[s, x])


@dataclass(frozen=True)
class BatchCandidateView:
    """Candidate grids for a batch of users, on the padded server axis.

    Attributes
    ----------
    users : ``(U,)`` the user indices evaluated.
    servers : ``(U, Smax)`` covering server indices, padded with 0.
    server_mask : ``(U, Smax)`` True where the padded slot is a real
        covering server (the paper's ``V_j``).
    valid : ``(U, Smax, X)`` mask of real covering server × existing channel.
    sinr : ``(U, Smax, X)`` SINR per candidate (garbage where invalid).
    rate : ``(U, Smax, X)`` capped data rate per candidate (MB/s).
    benefit : ``(U, Smax, X)`` Eq. (12) benefit per candidate.

    For any user the valid entries are bit-for-bit identical to the
    corresponding :class:`CandidateView` from :meth:`SinrEngine.candidates`.
    """

    users: np.ndarray
    servers: np.ndarray
    server_mask: np.ndarray
    valid: np.ndarray
    sinr: np.ndarray
    rate: np.ndarray
    benefit: np.ndarray


@dataclass(frozen=True)
class BatchBestResponse:
    """Per-user best candidate moves for a batch of users.

    ``server[u] == UNALLOCATED`` marks a user with no covering server (the
    per-user path returns ``None`` for it); its ``benefit`` entry is 0 and
    must not be interpreted.
    """

    users: np.ndarray  # (U,) user indices evaluated
    server: np.ndarray  # (U,) best server, UNALLOCATED when no candidate
    channel: np.ndarray  # (U,) best channel, UNALLOCATED when no candidate
    benefit: np.ndarray  # (U,) Eq. (12) benefit of the best candidate
    current_benefit: np.ndarray  # (U,) benefit at the current allocation


@dataclass(frozen=True)
class _BatchTables:
    """Precomputed padded covering structure (immutable per engine)."""

    cov: np.ndarray  # (M, Smax) covering server indices, padded with 0
    mask: np.ndarray  # (M, Smax) True on real covering slots
    gain: np.ndarray  # (M, Smax) gain to the user, 0 on padding
    signal: np.ndarray  # (M, Smax) gain · own power, 0 on padding
    valid: np.ndarray  # (M, Smax, X) real slot × existing channel


class SinrEngine:
    """Mutable interference state over a fixed :class:`Scenario`.

    The engine owns the allocation arrays (``server[j]``, ``channel[j]``,
    with −1 meaning unallocated) and the per-channel power table, and
    exposes: single-user candidate evaluation (:meth:`candidates`), global
    rate evaluation (:meth:`rates`), and incremental mutation
    (:meth:`assign`, :meth:`unassign`, :meth:`move`).

    Parameters
    ----------
    scenario:
        The problem entities.
    cfg:
        Radio parameters; channel counts come from the scenario (which was
        itself provisioned from a :class:`~repro.config.RadioConfig`).
    gain:
        Optional ``(N, M)`` gain-matrix override (e.g. a shadowed model
        from :mod:`repro.radio.fading`); defaults to the deterministic
        power law of :func:`~repro.radio.channel.gain_matrix`.
    """

    def __init__(
        self,
        scenario: Scenario,
        cfg: RadioConfig | None = None,
        *,
        gain: np.ndarray | None = None,
    ):
        self.scenario = scenario
        self.cfg = cfg or RadioConfig()
        if gain is None:
            self.gain = gain_matrix(scenario.server_xy, scenario.user_xy, self.cfg)
        else:
            gain = np.asarray(gain, dtype=float)
            if gain.shape != (scenario.n_servers, scenario.n_users):
                raise AllocationError(
                    f"gain override must be (N, M) = "
                    f"{(scenario.n_servers, scenario.n_users)}, got {gain.shape}"
                )
            if np.any(gain <= 0):
                raise AllocationError("gain override must be strictly positive")
            self.gain = gain.copy()
        self.coverage = scenario.coverage
        self.covering = scenario.covering_servers
        self.power = scenario.power
        self.noise = self.cfg.noise_watts
        self.bandwidth = self.cfg.bandwidth
        n, x = scenario.n_servers, max(scenario.max_channels, 1)
        self.n_channels = x
        #: total allocated power per (server, channel)
        self.channel_power = np.zeros((n, x), dtype=float)
        #: number of users per (server, channel)
        self.channel_count = np.zeros((n, x), dtype=np.int64)
        self.alloc_server = np.full(scenario.n_users, UNALLOCATED, dtype=np.int64)
        self.alloc_channel = np.full(scenario.n_users, UNALLOCATED, dtype=np.int64)
        self._channel_valid = scenario.channel_mask
        #: Lazily-built padded covering tables shared by the per-user and
        #: batched evaluation paths (coverage and gain are fixed per engine).
        self._batch: _BatchTables | None = None
        #: IDDE-Trace hook; the owning game attaches its tracer so kernel
        #: selection (scalar vs batched) and evaluation volume are observable.
        self.tracer: Tracer = NULL_TRACER
        self._scalar_kernel_seen = False
        self._batch_kernel_seen = False

    def set_tracer(self, tracer: Tracer | None) -> None:
        """Attach an IDDE-Trace tracer (``None`` restores the no-op)."""
        self.tracer = NULL_TRACER if tracer is None else tracer

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def assign(self, j: int, server: int, channel: int) -> None:
        """Allocate user ``j`` to ``(server, channel)``.

        Enforces Eq. (1): the server must cover the user, and the channel
        must exist on the server.  The user must currently be unallocated
        (use :meth:`move` to relocate).
        """
        self._check_user(j)
        if self.alloc_server[j] != UNALLOCATED:
            raise AllocationError(f"user {j} is already allocated; use move()")
        if not self.coverage[server, j]:
            raise CoverageError(f"server {server} does not cover user {j}")
        if not (0 <= channel < self.scenario.channels[server]):
            raise AllocationError(
                f"channel {channel} out of range for server {server} "
                f"({self.scenario.channels[server]} channels)"
            )
        self.alloc_server[j] = server
        self.alloc_channel[j] = channel
        self.channel_power[server, channel] += self.power[j]
        self.channel_count[server, channel] += 1

    def unassign(self, j: int) -> None:
        """Deallocate user ``j`` (no-op if already unallocated)."""
        self._check_user(j)
        i, x = self.alloc_server[j], self.alloc_channel[j]
        if i == UNALLOCATED:
            return
        self.channel_power[i, x] -= self.power[j]
        self.channel_count[i, x] -= 1
        # Guard against float drift accumulating across many moves.
        if self.channel_count[i, x] == 0:
            self.channel_power[i, x] = 0.0
        self.alloc_server[j] = UNALLOCATED
        self.alloc_channel[j] = UNALLOCATED

    def move(self, j: int, server: int, channel: int) -> None:
        """Relocate user ``j`` to ``(server, channel)`` atomically."""
        self.unassign(j)
        self.assign(j, server, channel)

    def reset(self) -> None:
        """Return to the all-unallocated state."""
        self.channel_power.fill(0.0)
        self.channel_count.fill(0)
        self.alloc_server.fill(UNALLOCATED)
        self.alloc_channel.fill(UNALLOCATED)

    def load_profile(self, server: np.ndarray, channel: np.ndarray) -> None:
        """Replace the full allocation state from profile arrays."""
        server = np.asarray(server, dtype=np.int64)
        channel = np.asarray(channel, dtype=np.int64)
        if server.shape != (self.scenario.n_users,) or channel.shape != server.shape:
            raise AllocationError("profile arrays must both have shape (M,)")
        self.reset()
        for j in np.flatnonzero(server != UNALLOCATED):
            self.assign(int(j), int(server[j]), int(channel[j]))

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _batch_tables(self) -> _BatchTables:
        """The padded covering tables, built once per engine."""
        if self._batch is None:
            m, x = self.scenario.n_users, self.n_channels
            smax = max((len(v) for v in self.covering), default=0)
            smax = max(smax, 1)
            cov = np.zeros((m, smax), dtype=np.int64)
            mask = np.zeros((m, smax), dtype=bool)
            for j, servers in enumerate(self.covering):
                s = len(servers)
                cov[j, :s] = servers
                mask[j, :s] = True
            gain = np.where(mask, self.gain[cov, np.arange(m)[:, None]], 0.0)
            signal = gain * self.power[:, None]
            valid = self._channel_valid[cov, :x] & mask[:, :, None]
            self._batch = _BatchTables(
                cov=cov, mask=mask, gain=gain, signal=signal, valid=valid
            )
        return self._batch

    def interference_profile(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-channel interference aggregate ``W_j[x]`` for user ``j``.

        Returns ``(servers, W)`` where ``servers`` is ``V_j`` and ``W`` has
        shape ``(X,)``: the gain-weighted power on each channel index summed
        over the covering servers, excluding ``j``'s own contribution.
        """
        self._check_user(j)
        servers = self.covering[j]
        if len(servers) == 0:
            return servers, np.zeros(self.n_channels)
        tables = self._batch_tables()
        # Reduce over the *padded* covering row with einsum, exactly like the
        # batched path: padding contributes exact zeros, and the identical
        # length/grouping keeps the two kernels bit-for-bit interchangeable.
        g = tables.gain[j]
        p = self.channel_power[tables.cov[j], :]
        w = np.einsum("s,sx->x", g, p)
        i, x = self.alloc_server[j], self.alloc_channel[j]
        if i != UNALLOCATED:
            w[x] -= self.gain[i, j] * self.power[j]
            # Clamp tiny negative residue from float cancellation.
            if w[x] < 0.0:
                w[x] = 0.0
        return servers, w

    def batch_interference(self, users: np.ndarray | None = None) -> np.ndarray:
        """``(U, X)`` interference aggregates ``W_j[x]`` for a user batch.

        One einsum pass over the padded covering tensor; per-row results are
        bit-for-bit equal to :meth:`interference_profile`.  ``users`` defaults
        to all users.
        """
        tables = self._batch_tables()
        if users is None:
            users = np.arange(self.scenario.n_users)
        else:
            users = np.asarray(users, dtype=np.int64)
        g = tables.gain[users]  # (U, Smax)
        p = self.channel_power[tables.cov[users], :]  # (U, Smax, X)
        w = np.einsum("us,usx->ux", g, p)
        srv = self.alloc_server[users]
        own = np.flatnonzero(srv != UNALLOCATED)
        if own.size:
            ch = self.alloc_channel[users[own]]
            sub = self.gain[srv[own], users[own]] * self.power[users[own]]
            # Same subtract-then-clamp as the per-user path (negative residue
            # from float cancellation only).
            w[own, ch] = np.maximum(w[own, ch] - sub, 0.0)
        return w

    def batch_candidates(self, users: np.ndarray | None = None) -> BatchCandidateView:
        """Evaluate every candidate ``(server, channel)`` for a user batch.

        The padded-axis equivalent of calling :meth:`candidates` per user:
        valid entries carry bit-identical SINR / rate / benefit values.
        """
        tables = self._batch_tables()
        if users is None:
            users = np.arange(self.scenario.n_users)
        else:
            users = np.asarray(users, dtype=np.int64)
        w = self.batch_interference(users)  # (U, X)
        signal = tables.signal[users][:, :, None]  # (U, Smax, 1)
        den = w[:, None, :] + self.noise  # (U, 1, X)
        sinr = signal / den
        rate = capped_rate(self.bandwidth, sinr, self.scenario.rmax[users][:, None, None])
        # Padded slots have signal exactly 0; with zero interference that is
        # 0/0, which the valid mask hides — silence the hardware flag only.
        with np.errstate(invalid="ignore"):
            benefit = signal / (w[:, None, :] + signal)
        return BatchCandidateView(
            users=users,
            servers=tables.cov[users],
            server_mask=tables.mask[users],
            valid=tables.valid[users],
            sinr=sinr,
            rate=rate,
            benefit=benefit,
        )

    def batch_best_responses(self, users: np.ndarray | None = None) -> BatchBestResponse:
        """Benefit-maximising moves for a user batch in one vectorised pass.

        Per user this matches :meth:`candidates` followed by
        ``CandidateView.best("benefit")`` — including argmax tie-breaking,
        because the padded grid preserves candidate order and masks padding
        to ``-inf`` — plus :meth:`user_benefit` for ``current_benefit``.
        Users without a covering server get ``server == channel ==
        UNALLOCATED``.
        """
        tables = self._batch_tables()
        if users is None:
            users = np.arange(self.scenario.n_users)
        else:
            users = np.asarray(users, dtype=np.int64)
        u = users.shape[0]
        if self.tracer.enabled:
            self.tracer.count("sinr.batch_rounds")
            if not self._batch_kernel_seen:
                self._batch_kernel_seen = True
                self.tracer.event("sinr.kernel", kernel="batched", batch_size=int(u))
        if u == 0:
            empty_i = np.empty(0, dtype=np.int64)
            empty_f = np.empty(0, dtype=float)
            return BatchBestResponse(
                users=users.astype(np.int64),
                server=empty_i,
                channel=empty_i.copy(),
                benefit=empty_f,
                current_benefit=empty_f.copy(),
            )
        w = self.batch_interference(users)  # (U, X)
        signal = tables.signal[users]  # (U, Smax)
        # 0/0 on padded slots only (signal is exactly 0 there); masked below.
        with np.errstate(invalid="ignore"):
            benefit = signal[:, :, None] / (w[:, None, :] + signal[:, :, None])
        masked = np.where(tables.valid[users], benefit, -np.inf)
        flat = masked.reshape(u, -1)
        arg = np.argmax(flat, axis=1)
        rows = np.arange(u)
        s_idx, x_idx = np.divmod(arg, self.n_channels)
        has_candidate = tables.mask[users].any(axis=1)
        best_server = np.where(
            has_candidate, tables.cov[users][rows, s_idx], UNALLOCATED
        ).astype(np.int64)
        best_channel = np.where(has_candidate, x_idx, UNALLOCATED).astype(np.int64)
        best_benefit = np.where(has_candidate, flat[rows, arg], 0.0)
        # Current benefits, Eq. (12) at the standing allocation.
        srv = self.alloc_server[users]
        current = np.zeros(u, dtype=float)
        own = np.flatnonzero(srv != UNALLOCATED)
        if own.size:
            ch = self.alloc_channel[users[own]]
            own_signal = self.gain[srv[own], users[own]] * self.power[users[own]]
            current[own] = own_signal / (w[own, ch] + own_signal)
        return BatchBestResponse(
            users=users,
            server=best_server,
            channel=best_channel,
            benefit=best_benefit,
            current_benefit=current,
        )

    def candidates(self, j: int) -> CandidateView:
        """Evaluate every candidate ``(server, channel)`` for user ``j``."""
        if self.tracer.enabled:
            self.tracer.count("sinr.scalar_evals")
            if not self._scalar_kernel_seen:
                self._scalar_kernel_seen = True
                self.tracer.event("sinr.kernel", kernel="scalar", user=int(j))
        servers, w = self.interference_profile(j)
        s = len(servers)
        if s == 0:
            empty = np.empty((0, self.n_channels))
            return CandidateView(
                servers=servers,
                valid=np.empty((0, self.n_channels), dtype=bool),
                sinr=empty,
                rate=empty,
                benefit=empty,
            )
        signal = (self.gain[servers, j] * self.power[j])[:, None]  # (S, 1)
        den = w[None, :] + self.noise  # (1, X) broadcast to (S, X)
        sinr = signal / den
        rate = capped_rate(self.bandwidth, sinr, self.scenario.rmax[j])
        benefit = signal / (w[None, :] + signal)
        valid = self._channel_valid[servers, : self.n_channels]
        return CandidateView(servers=servers, valid=valid, sinr=sinr, rate=rate, benefit=benefit)

    def user_sinr(self, j: int) -> float:
        """SINR of user ``j`` at its current allocation (0 if unallocated)."""
        self._check_user(j)
        i, x = self.alloc_server[j], self.alloc_channel[j]
        if i == UNALLOCATED:
            return 0.0
        _, w = self.interference_profile(j)
        return float(self.gain[i, j] * self.power[j] / (w[x] + self.noise))

    def user_rate(self, j: int) -> float:
        """Eq. (4) data rate of user ``j`` at its current allocation."""
        i = self.alloc_server[j]
        if i == UNALLOCATED:
            return 0.0
        return float(
            capped_rate(self.bandwidth, np.asarray(self.user_sinr(j)), self.scenario.rmax[j])
        )

    def user_benefit(self, j: int) -> float:
        """Eq. (12) benefit of user ``j`` at its current allocation."""
        self._check_user(j)
        i, x = self.alloc_server[j], self.alloc_channel[j]
        if i == UNALLOCATED:
            return 0.0
        _, w = self.interference_profile(j)
        signal = self.gain[i, j] * self.power[j]
        return float(signal / (w[x] + signal))

    def rates(self) -> np.ndarray:
        """Vectorised Eq. (4) rates for all users (``(M,)``, MB/s).

        Unallocated users contribute zero, matching the indicator in
        Eq. (4).
        """
        m = self.scenario.n_users
        out = np.zeros(m)
        alloc = np.flatnonzero(self.alloc_server != UNALLOCATED)
        if len(alloc) == 0:
            return out
        a = self.alloc_server[alloc]
        x = self.alloc_channel[alloc]
        # Gain-weighted channel power from every server to each user, on the
        # user's own channel index: (N, Ma) gather then a masked reduction
        # over the covering servers only.
        gw = self.gain[:, alloc] * self.coverage[:, alloc]  # (N, Ma)
        p_sel = self.channel_power[:, x]  # (N, Ma)
        w = np.einsum("nm,nm->m", gw, p_sel)
        own = self.gain[a, alloc] * self.power[alloc]
        w = np.maximum(w - own, 0.0)
        sinr = own / (w + self.noise)
        out[alloc] = capped_rate(self.bandwidth, sinr, self.scenario.rmax[alloc])
        return out

    def average_rate(self) -> float:
        """Eq. (5): mean over **all** M users (unallocated count as zero)."""
        m = self.scenario.n_users
        if m == 0:
            return 0.0
        return float(self.rates().sum() / m)

    def uncapped_rates(self) -> np.ndarray:
        """Shannon rates without the ``R_max`` cap (diagnostics)."""
        m = self.scenario.n_users
        out = np.zeros(m)
        for j in range(m):
            i = self.alloc_server[j]
            if i == UNALLOCATED:
                continue
            out[j] = float(shannon_rate(self.bandwidth, np.asarray(self.user_sinr(j))))
        return out

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def overlap_components(self) -> np.ndarray:
        """Connected components of the coverage-overlap graph (``(N,)`` labels).

        Two servers are adjacent iff some user's covering set ``V_j``
        contains both — exactly the coupling structure of the IDDE-U game:
        a user's benefit (Eq. 12) depends only on the channel powers of its
        covering servers, so users whose covering sets fall in different
        components never interact and the game decomposes into independent
        sub-games (the basis of :mod:`repro.sharding`).

        Labels are dense, start at 0, and are ordered by each component's
        smallest server index (deterministic for a fixed scenario).
        """
        n = self.scenario.n_servers
        parent = np.arange(n, dtype=np.int64)

        def find(a: int) -> int:
            root = a
            while parent[root] != root:
                root = int(parent[root])
            while parent[a] != root:  # path compression
                parent[a], a = root, int(parent[a])
            return root

        for servers in self.covering:
            if len(servers) < 2:
                continue
            first = find(int(servers[0]))
            for s in servers[1:]:
                parent[find(int(s))] = first
                first = find(first)
        labels = np.empty(n, dtype=np.int64)
        seen: dict[int, int] = {}
        for i in range(n):
            root = find(i)
            labels[i] = seen.setdefault(root, len(seen))
        return labels

    # ------------------------------------------------------------------
    def users_on(self, server: int, channel: int) -> np.ndarray:
        """Indices of users allocated to ``(server, channel)``."""
        return np.flatnonzero(
            (self.alloc_server == server) & (self.alloc_channel == channel)
        )

    def _check_user(self, j: int) -> None:
        if not (0 <= j < self.scenario.n_users):
            raise AllocationError(f"user index {j} out of range [0, {self.scenario.n_users})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        allocated = int((self.alloc_server != UNALLOCATED).sum())
        return (
            f"SinrEngine(N={self.scenario.n_servers}, M={self.scenario.n_users}, "
            f"allocated={allocated})"
        )
