"""Wireless last-mile substrate (Section 2.2 of the paper).

Implements the user–server communication model: channel gain
``g_{i,j} = η · H_{i,j}^{-loss}``, the SINR of Eq. (2) with intra-cell and
inter-cell interference, and the Shannon data rate of Eqs. (3)–(4) with the
per-user rate cap.  The :class:`~repro.radio.sinr.SinrEngine` maintains
incremental per-channel power aggregates so best-response dynamics evaluate
every candidate channel of a user in one vectorised sweep.
"""

from .channel import gain_matrix
from .rate import shannon_rate
from .sinr import SinrEngine

__all__ = ["gain_matrix", "shannon_rate", "SinrEngine"]
