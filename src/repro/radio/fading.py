"""Alternative channel-gain models (shadowing and fast fading).

Section 2.2 of the paper notes that "the SINR can be calculated based on
other wireless communication models based on the actual networking
environment — it will not impact the IDDE problem or the performance of
the proposed approaches fundamentally."  This module makes that claim
testable by providing drop-in gain models beyond the deterministic power
law:

* :func:`lognormal_shadowing` — the power law multiplied by a per-link
  log-normal shadowing term (σ in dB, the standard urban model);
* :func:`rayleigh_expected` — the power law scaled by the expectation of
  a unit-mean exponential fast-fading power gain (which is 1 — Rayleigh
  fading leaves the *mean* gain unchanged) with an optional diversity
  back-off for worst-case provisioning;
* :func:`composite_gain` — shadowing and fading combined.

A gain matrix from any of these can be injected into the
:class:`~repro.radio.sinr.SinrEngine` via its ``gain`` parameter; the
robustness bench re-runs the solver line-up under shadowing and asserts
the orderings survive.
"""

from __future__ import annotations

import numpy as np

from ..config import RadioConfig
from ..errors import ConfigurationError
from ..rng import ensure_rng
from .channel import gain_matrix

__all__ = ["lognormal_shadowing", "rayleigh_expected", "composite_gain"]


def lognormal_shadowing(
    server_xy: np.ndarray,
    user_xy: np.ndarray,
    rng: np.random.Generator | int | None = None,
    *,
    sigma_db: float = 6.0,
    cfg: RadioConfig | None = None,
) -> np.ndarray:
    """Power-law gain with per-link log-normal shadowing.

    ``g = η H^-loss · 10^(X/10)`` with ``X ~ N(0, σ_dB²)`` drawn once per
    (server, user) link — the slow-fading component stays fixed for the
    scenario's lifetime, as in standard urban measurement models.
    """
    if sigma_db < 0:
        raise ConfigurationError(f"sigma_db must be >= 0, got {sigma_db}")
    rng = ensure_rng(rng)
    base = gain_matrix(server_xy, user_xy, cfg)
    shadow_db = rng.normal(0.0, sigma_db, size=base.shape)
    return base * 10.0 ** (shadow_db / 10.0)


def rayleigh_expected(
    server_xy: np.ndarray,
    user_xy: np.ndarray,
    *,
    diversity_backoff: float = 1.0,
    cfg: RadioConfig | None = None,
) -> np.ndarray:
    """Power-law gain under expected Rayleigh fast fading.

    The exponential power-fading term has unit mean, so the expected gain
    equals the power law; ``diversity_backoff ≤ 1`` optionally derates the
    signal (not the interference would be inconsistent — the backoff
    applies uniformly) to provision for outage rather than the mean.
    """
    if not (0 < diversity_backoff <= 1.0):
        raise ConfigurationError(
            f"diversity_backoff must be in (0, 1], got {diversity_backoff}"
        )
    return diversity_backoff * gain_matrix(server_xy, user_xy, cfg)


def composite_gain(
    server_xy: np.ndarray,
    user_xy: np.ndarray,
    rng: np.random.Generator | int | None = None,
    *,
    sigma_db: float = 6.0,
    diversity_backoff: float = 1.0,
    cfg: RadioConfig | None = None,
) -> np.ndarray:
    """Shadowing and expected fast fading combined."""
    shadowed = lognormal_shadowing(
        server_xy, user_xy, rng, sigma_db=sigma_db, cfg=cfg
    )
    if not (0 < diversity_backoff <= 1.0):
        raise ConfigurationError(
            f"diversity_backoff must be in (0, 1], got {diversity_backoff}"
        )
    return diversity_backoff * shadowed
