"""Channel gain model: ``g_{i,x,j} = η · H_{i,j}^{-loss}``.

The gain depends only on the user–server distance (frequency-flat across a
server's channels), per the paper's experimental setting ``η = 1, loss = 3``.
Distances are clamped below by ``RadioConfig.min_distance`` so a user sitting
exactly on a server site does not produce a singular gain.
"""

from __future__ import annotations

import numpy as np

from ..config import RadioConfig
from ..errors import ScenarioError
from ..geometry import pairwise_distances

__all__ = ["gain_matrix", "gain_from_distance"]


def gain_from_distance(
    distance: np.ndarray, cfg: RadioConfig | None = None
) -> np.ndarray:
    """Apply the power-law gain to a distance array (metres)."""
    cfg = cfg or RadioConfig()
    d = np.maximum(np.asarray(distance, dtype=float), cfg.min_distance)
    return cfg.eta * d ** (-cfg.loss_exponent)


def gain_matrix(
    server_xy: np.ndarray,
    user_xy: np.ndarray,
    cfg: RadioConfig | None = None,
) -> np.ndarray:
    """Dense ``(N, M)`` channel-gain matrix between servers and users.

    Entries are strictly positive; gains fall off as the cube of distance
    under the default configuration, so far servers contribute negligibly
    to interference but are never exactly zero.
    """
    server_xy = np.asarray(server_xy, dtype=float)
    user_xy = np.asarray(user_xy, dtype=float)
    if server_xy.size and server_xy.ndim != 2:
        raise ScenarioError(f"server_xy must be 2-D, got shape {server_xy.shape}")
    dist = pairwise_distances(server_xy, user_xy)
    return gain_from_distance(dist, cfg)
