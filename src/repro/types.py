"""Core value types: servers, users, data items, and the Scenario container.

The package is arrays-first: the :class:`Scenario` stores every quantity as a
NumPy array so the radio and delivery kernels vectorise, while the
:class:`EdgeServer` / :class:`User` / :class:`DataItem` dataclasses provide an
ergonomic per-entity view for examples and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, Sequence

import numpy as np

from .errors import ScenarioError
from .geometry import coverage_matrix, covering_sets

__all__ = ["EdgeServer", "User", "DataItem", "Scenario"]


@dataclass(frozen=True)
class EdgeServer:
    """One edge server: a coverage disc plus reserved storage and channels."""

    index: int
    x: float
    y: float
    radius: float
    storage: float
    n_channels: int

    @property
    def xy(self) -> tuple[float, float]:
        return (self.x, self.y)


@dataclass(frozen=True)
class User:
    """One mobile user: a position, transmit power and Shannon rate cap."""

    index: int
    x: float
    y: float
    power: float
    rmax: float

    @property
    def xy(self) -> tuple[float, float]:
        return (self.x, self.y)


@dataclass(frozen=True)
class DataItem:
    """One data item (the unit of replica placement), sized in MB."""

    index: int
    size: float


class Scenario:
    """Immutable container for one IDDE problem's entities.

    Parameters
    ----------
    server_xy : ``(N, 2)`` float array of server positions in metres.
    radius : ``(N,)`` coverage radii in metres.
    storage : ``(N,)`` reserved storage ``A_i`` in MB.
    channels : ``(N,)`` int channel counts ``|C_i|``.
    user_xy : ``(M, 2)`` user positions in metres.
    power : ``(M,)`` transmit powers ``p_j`` in Watts.
    rmax : ``(M,)`` per-user Shannon caps ``R_{j,max}`` in MB/s.
    sizes : ``(K,)`` data sizes ``s_k`` in MB.
    requests : ``(M, K)`` boolean request matrix ``ζ_{j,k}``.

    Every array is copied and frozen (``writeable=False``); derived
    structures (coverage, covering sets) are computed lazily and cached.
    """

    __slots__ = (
        "server_xy",
        "radius",
        "storage",
        "channels",
        "user_xy",
        "power",
        "rmax",
        "sizes",
        "requests",
        "__dict__",
    )

    def __init__(
        self,
        server_xy: np.ndarray,
        radius: np.ndarray,
        storage: np.ndarray,
        channels: np.ndarray,
        user_xy: np.ndarray,
        power: np.ndarray,
        rmax: np.ndarray,
        sizes: np.ndarray,
        requests: np.ndarray,
    ) -> None:
        self.server_xy = _frozen(np.asarray(server_xy, dtype=float))
        self.radius = _frozen(np.asarray(radius, dtype=float))
        self.storage = _frozen(np.asarray(storage, dtype=float))
        self.channels = _frozen(np.asarray(channels, dtype=np.int64))
        self.user_xy = _frozen(np.asarray(user_xy, dtype=float))
        self.power = _frozen(np.asarray(power, dtype=float))
        self.rmax = _frozen(np.asarray(rmax, dtype=float))
        self.sizes = _frozen(np.asarray(sizes, dtype=float))
        self.requests = _frozen(np.asarray(requests, dtype=bool))
        self._validate()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        n, m, k = self.n_servers, self.n_users, self.n_data
        if self.server_xy.ndim != 2 or self.server_xy.shape[1] != 2:
            raise ScenarioError(f"server_xy must be (N, 2), got {self.server_xy.shape}")
        if self.user_xy.ndim != 2 or self.user_xy.shape[1] != 2:
            raise ScenarioError(f"user_xy must be (M, 2), got {self.user_xy.shape}")
        for name, arr, expect in (
            ("radius", self.radius, (n,)),
            ("storage", self.storage, (n,)),
            ("channels", self.channels, (n,)),
            ("power", self.power, (m,)),
            ("rmax", self.rmax, (m,)),
            ("sizes", self.sizes, (k,)),
            ("requests", self.requests, (m, k)),
        ):
            if arr.shape != expect:
                raise ScenarioError(f"{name} has shape {arr.shape}, expected {expect}")
        if n == 0:
            raise ScenarioError("scenario needs at least one edge server")
        if np.any(self.radius <= 0):
            raise ScenarioError("all coverage radii must be positive")
        if np.any(self.storage < 0):
            raise ScenarioError("storage capacities must be non-negative")
        if np.any(self.channels < 1):
            raise ScenarioError("every server needs at least one channel")
        if m and np.any(self.power <= 0):
            raise ScenarioError("user powers must be positive")
        if m and np.any(self.rmax <= 0):
            raise ScenarioError("user rate caps must be positive")
        if k and np.any(self.sizes <= 0):
            raise ScenarioError("data sizes must be positive")

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    @property
    def n_servers(self) -> int:
        return self.server_xy.shape[0]

    @property
    def n_users(self) -> int:
        return self.user_xy.shape[0]

    @property
    def n_data(self) -> int:
        return self.sizes.shape[0]

    @property
    def max_channels(self) -> int:
        return int(self.channels.max()) if self.n_servers else 0

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    @cached_property
    def coverage(self) -> np.ndarray:
        """Boolean ``(N, M)`` coverage matrix (server *i* covers user *j*)."""
        cov = coverage_matrix(self.server_xy, self.radius, self.user_xy)
        cov.setflags(write=False)
        return cov

    @cached_property
    def covering_servers(self) -> list[np.ndarray]:
        """Per-user arrays of covering server indices (the paper's ``V_j``)."""
        return covering_sets(self.coverage)

    @cached_property
    def channel_mask(self) -> np.ndarray:
        """Boolean ``(N, X)`` validity mask; ``X = max_channels``."""
        x = np.arange(self.max_channels)
        mask = x[None, :] < self.channels[:, None]
        mask.setflags(write=False)
        return mask

    @cached_property
    def covered_users(self) -> np.ndarray:
        """Boolean ``(M,)``: user has at least one covering server."""
        out = self.coverage.any(axis=0)
        out.setflags(write=False)
        return out

    @cached_property
    def total_storage(self) -> float:
        """``Σ_i A_i`` — the total reserved storage in MB."""
        return float(self.storage.sum())

    @cached_property
    def total_requests(self) -> int:
        """``Σ_j Σ_k ζ_{j,k}`` — the denominator of Eq. (9)."""
        return int(self.requests.sum())

    # ------------------------------------------------------------------
    # entity views
    # ------------------------------------------------------------------
    def server(self, i: int) -> EdgeServer:
        return EdgeServer(
            index=i,
            x=float(self.server_xy[i, 0]),
            y=float(self.server_xy[i, 1]),
            radius=float(self.radius[i]),
            storage=float(self.storage[i]),
            n_channels=int(self.channels[i]),
        )

    def user(self, j: int) -> User:
        return User(
            index=j,
            x=float(self.user_xy[j, 0]),
            y=float(self.user_xy[j, 1]),
            power=float(self.power[j]),
            rmax=float(self.rmax[j]),
        )

    def data_item(self, k: int) -> DataItem:
        return DataItem(index=k, size=float(self.sizes[k]))

    def servers(self) -> Iterator[EdgeServer]:
        return (self.server(i) for i in range(self.n_servers))

    def users(self) -> Iterator[User]:
        return (self.user(j) for j in range(self.n_users))

    def data_items(self) -> Iterator[DataItem]:
        return (self.data_item(k) for k in range(self.n_data))

    # ------------------------------------------------------------------
    # dunder & construction helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Scenario(N={self.n_servers}, M={self.n_users}, K={self.n_data}, "
            f"requests={self.total_requests})"
        )

    @classmethod
    def from_entities(
        cls,
        servers: Sequence[EdgeServer],
        users: Sequence[User],
        data: Sequence[DataItem],
        requests: np.ndarray,
    ) -> "Scenario":
        """Build a Scenario from per-entity dataclasses."""
        return cls(
            server_xy=np.array([[s.x, s.y] for s in servers], dtype=float).reshape(-1, 2),
            radius=np.array([s.radius for s in servers], dtype=float),
            storage=np.array([s.storage for s in servers], dtype=float),
            channels=np.array([s.n_channels for s in servers], dtype=np.int64),
            user_xy=np.array([[u.x, u.y] for u in users], dtype=float).reshape(-1, 2),
            power=np.array([u.power for u in users], dtype=float),
            rmax=np.array([u.rmax for u in users], dtype=float),
            sizes=np.array([d.size for d in data], dtype=float),
            requests=np.asarray(requests, dtype=bool),
        )


def _frozen(arr: np.ndarray) -> np.ndarray:
    out = np.array(arr, copy=True)
    out.setflags(write=False)
    return out
