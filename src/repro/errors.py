"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate the failure class.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ScenarioError",
    "CoverageError",
    "TopologyError",
    "AllocationError",
    "DeliveryError",
    "StorageViolation",
    "SolverError",
    "ConvergenceError",
    "ExperimentError",
    "DatasetError",
    "BenchError",
    "ShardingError",
    "TraceError",
    "SolverLookupError",
    "ServeError",
    "ProtocolError",
    "QueueFullError",
    "RequestTimeoutError",
]


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """A configuration object is internally inconsistent or out of range."""


class ScenarioError(ReproError, ValueError):
    """A scenario (servers/users/data) is malformed."""


class CoverageError(ScenarioError):
    """A user is allocated to a server that does not cover it (Eq. 1)."""


class TopologyError(ReproError, ValueError):
    """The edge-server graph is malformed (bad links, speeds, or shape)."""


class AllocationError(ReproError, ValueError):
    """A user allocation profile violates the problem constraints."""


class DeliveryError(ReproError, ValueError):
    """A data delivery profile violates the problem constraints."""


class StorageViolation(DeliveryError):
    """A delivery profile exceeds a server's reserved storage (Eq. 6)."""


class SolverError(ReproError, RuntimeError):
    """A solver failed to produce a valid IDDE strategy."""


class ConvergenceError(SolverError):
    """Best-response dynamics exhausted their round budget before a Nash
    equilibrium certificate could be issued."""


class ExperimentError(ReproError, RuntimeError):
    """The experiment harness was driven with inconsistent parameters."""


class DatasetError(ReproError, ValueError):
    """A dataset file or pool is malformed or unavailable."""


class BenchError(ReproError, ValueError):
    """The IDDE-Bench harness was driven with inconsistent parameters, or
    a benchmark document failed schema validation."""


class ShardingError(ReproError, ValueError):
    """The interference-domain decomposition layer was driven with an
    inconsistent plan (mismatched shard/user maps, an unsolvable split)."""


class TraceError(ReproError, ValueError):
    """An IDDE-Trace tracer was misused (mis-nested spans, backwards
    clock) or a trace document failed schema validation."""


class SolverLookupError(ReproError, KeyError):
    """An unknown solver name was requested from the solver registry.

    Subclasses :class:`KeyError` so pre-façade callers that caught the old
    lookup failure keep working unchanged."""


class ServeError(ReproError, RuntimeError):
    """The IDDE-Serve daemon could not service a request.

    Subclasses carry the overload/timeout flavours; the daemon maps each
    :class:`ReproError` class to an HTTP status and a structured error
    body (see :data:`repro.serve.http.STATUS_BY_ERROR`)."""


class ProtocolError(ServeError):
    """A request violated the HTTP/JSON wire protocol (unparseable request
    line, oversized or non-JSON body, bad method) — mapped to 400."""


class QueueFullError(ServeError):
    """The daemon's bounded request queue is at capacity; the request was
    shed rather than enqueued — mapped to 429 (back off and retry)."""


class RequestTimeoutError(ServeError):
    """A request exceeded the daemon's per-request time budget and was
    abandoned — mapped to 504."""
