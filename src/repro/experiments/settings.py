"""Table 2: the four experiment parameter sets.

Each set varies one parameter and fixes the other three at the defaults
``N=30, M=200, K=5, density=1.0``:

=======  =================================  =====================
Set      Varying                            Values
=======  =================================  =====================
Set #1   number of edge servers ``N``       20, 25, …, 50
Set #2   number of users ``M``              50, 100, …, 350
Set #3   number of data items ``K``         2, 3, …, 8
Set #4   network density                    1.0, 1.4, …, 3.0
=======  =================================  =====================
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from ..errors import ExperimentError

__all__ = ["SweepSettings", "DEFAULTS", "SET1", "SET2", "SET3", "SET4", "ALL_SETS"]

#: The fixed defaults shared by all sets (Table 2).
DEFAULTS: Mapping[str, float] = MappingProxyType(
    {"n": 30, "m": 200, "k": 5, "density": 1.0}
)

_PARAMS = ("n", "m", "k", "density")


@dataclass(frozen=True)
class SweepSettings:
    """One row of Table 2: a varying parameter and its value grid."""

    name: str
    varying: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.varying not in _PARAMS:
            raise ExperimentError(
                f"varying must be one of {_PARAMS}, got {self.varying!r}"
            )
        if len(self.values) == 0:
            raise ExperimentError(f"{self.name}: empty value grid")

    def params_for(self, value: float) -> dict[str, float]:
        """The full (n, m, k, density) parameter point for one grid value."""
        if value not in self.values:
            raise ExperimentError(f"{value!r} is not on {self.name}'s grid {self.values}")
        params = dict(DEFAULTS)
        params[self.varying] = value
        return params


SET1 = SweepSettings("Set #1", "n", tuple(range(20, 55, 5)))
SET2 = SweepSettings("Set #2", "m", tuple(range(50, 400, 50)))
SET3 = SweepSettings("Set #3", "k", tuple(range(2, 9)))
SET4 = SweepSettings("Set #4", "density", tuple(round(1.0 + 0.4 * i, 1) for i in range(6)))

ALL_SETS: tuple[SweepSettings, ...] = (SET1, SET2, SET3, SET4)
