"""Markdown emitters for sweep results (the EXPERIMENTS.md tables)."""

from __future__ import annotations

from io import StringIO

from .sweep import SweepResult

__all__ = [
    "render_point_row",
    "render_sweep_markdown",
    "render_advantage_markdown",
    "render_timing_markdown",
    "render_significance_markdown",
]

_METRIC_LABEL = {
    "r_avg": "R_avg (MB/s)",
    "l_avg_ms": "L_avg (ms)",
    "time_s": "time (s)",
}


def render_point_row(result: SweepResult, metric: str, index: int) -> str:
    """One markdown table row: the metric at one grid point, all solvers."""
    point = result.points[index]
    cells = [f"{point.get(name, metric):.2f}" for name in result.solver_names]
    return "| " + " | ".join([str(point.value), *cells]) + " |"


def render_sweep_markdown(result: SweepResult, metric: str) -> str:
    """A full markdown table: grid value × solver for one metric."""
    out = StringIO()
    label = _METRIC_LABEL.get(metric, metric)
    out.write(
        f"### {result.settings.name}: {label} vs {result.settings.varying}\n\n"
    )
    out.write("| " + " | ".join([result.settings.varying, *result.solver_names]) + " |\n")
    out.write("|" + "---|" * (len(result.solver_names) + 1) + "\n")
    for idx in range(len(result.points)):
        out.write(render_point_row(result, metric, idx) + "\n")
    return out.getvalue()


def render_advantage_markdown(result: SweepResult) -> str:
    """IDDE-G's average advantages for one sweep, both objectives."""
    out = StringIO()
    out.write(f"### {result.settings.name}: IDDE-G average advantage\n\n")
    out.write("| vs | R_avg (+%) | L_avg (−%) |\n|---|---|---|\n")
    rate_adv = result.advantage_pct("r_avg")
    lat_adv = result.advantage_pct("l_avg_ms")
    for name in result.solver_names:
        if name == "IDDE-G":
            continue
        out.write(f"| {name} | {rate_adv[name]:.2f} | {lat_adv[name]:.2f} |\n")
    return out.getvalue()


def render_significance_markdown(
    result: SweepResult, metric: str, *, ours: str = "IDDE-G"
) -> str:
    """Paired-significance table: IDDE-G vs each baseline on one metric.

    Pools the per-trial samples across the whole grid (the pairs stay
    aligned because every trial runs all approaches on the same instance).
    Requires the sweep to have been run with ``keep_raw=True``.

    Raises
    ------
    ValueError
        If the sweep holds no raw samples.
    """
    from .significance import compare

    if not result.points or not result.points[0].raw:
        raise ValueError("significance needs run_sweep(..., keep_raw=True)")
    higher_better = metric == "r_avg"
    ours_samples = [
        x for point in result.points for x in point.raw[ours][metric]
    ]
    out = StringIO()
    label = _METRIC_LABEL.get(metric, metric)
    out.write(f"### {result.settings.name}: paired significance, {label}\n\n")
    out.write(
        "| vs | mean Δ | 95% CI | win rate | significant |\n|---|---|---|---|---|\n"
    )
    for name in result.solver_names:
        if name == ours:
            continue
        theirs = [x for point in result.points for x in point.raw[name][metric]]
        c = compare(ours_samples, theirs, higher_better=higher_better)
        out.write(
            f"| {name} | {c.mean_diff:+.3f} | [{c.ci_low:+.3f}, {c.ci_high:+.3f}] "
            f"| {c.win_rate:.0%} | {'yes' if c.significant else 'no'} |\n"
        )
    return out.getvalue()


def render_timing_markdown(results: list[SweepResult]) -> str:
    """Fig. 7: per-set average computation time per solver."""
    out = StringIO()
    out.write("### Computation time (s) per set\n\n")
    solvers = results[0].solver_names
    out.write("| set | " + " | ".join(solvers) + " |\n")
    out.write("|" + "---|" * (len(solvers) + 1) + "\n")
    for res in results:
        cells = [f"{res.average(name, 'time_s'):.4f}" for name in solvers]
        out.write("| " + " | ".join([res.settings.name, *cells]) + " |\n")
    return out.getvalue()
