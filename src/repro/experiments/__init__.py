"""Experiment harness: the paper's Section 4 evaluation, regenerable.

* :mod:`~repro.experiments.settings` — Table 2's four parameter sets;
* :mod:`~repro.experiments.runner` — one trial = one instance solved by
  every approach, returning all three metrics (R_avg, L_avg, time);
* :mod:`~repro.experiments.sweep` — repeated trials over a varying
  parameter, optionally across processes, with mean/std aggregation;
* :mod:`~repro.experiments.figures` — the paper's reported reference
  numbers and series extraction for Figs. 3–7;
* :mod:`~repro.experiments.report` — markdown emitters used to build
  EXPERIMENTS.md;
* :mod:`~repro.experiments.latency_probe` — the Fig. 1 motivation
  experiment (edge vs cloud RTT over a simulated week).
"""

from .latency_probe import LatencyProbe, run_latency_probe
from .runner import TrialSpec, TrialResult, run_trial, SOLVER_NAMES
from .settings import ALL_SETS, SET1, SET2, SET3, SET4, SweepSettings, DEFAULTS
from .sweep import SweepPoint, SweepResult, run_sweep
from .export import sweep_to_rows, write_csv, write_json
from .figures import PAPER, series
from .paper import ReproductionReport, reproduce_all
from .report import render_sweep_markdown, render_point_row

__all__ = [
    "TrialSpec",
    "TrialResult",
    "run_trial",
    "SOLVER_NAMES",
    "SweepSettings",
    "DEFAULTS",
    "SET1",
    "SET2",
    "SET3",
    "SET4",
    "ALL_SETS",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
    "PAPER",
    "series",
    "render_sweep_markdown",
    "render_point_row",
    "LatencyProbe",
    "run_latency_probe",
    "sweep_to_rows",
    "write_csv",
    "write_json",
    "ReproductionReport",
    "reproduce_all",
]
