"""Parameter sweeps: repeated trials over Table 2 grids with aggregation.

``run_sweep`` executes ``reps`` trials per grid point (the paper uses 50),
optionally across worker processes, and aggregates each solver's metrics
into mean and standard deviation per point — exactly the series plotted in
Figs. 3–7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..obs.tracer import Tracer, ensure_tracer
from ..parallel import ParallelConfig, parallel_map
from ..rng import key_to_int
from .runner import SOLVER_NAMES, METRICS, TrialResult, TrialSpec, run_trial
from .settings import SweepSettings

__all__ = ["SweepPoint", "SweepResult", "run_sweep"]


@dataclass
class SweepPoint:
    """Aggregated metrics for one grid value.

    ``raw`` holds the per-trial samples (``raw[solver][metric]`` aligned
    trial-wise across solvers) when the sweep ran with ``keep_raw=True`` —
    the input the paired-significance analysis needs.
    """

    value: float
    reps: int
    mean: dict[str, dict[str, float]] = field(default_factory=dict)
    std: dict[str, dict[str, float]] = field(default_factory=dict)
    raw: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def get(self, solver: str, metric: str) -> float:
        return self.mean[solver][metric]


@dataclass
class SweepResult:
    """All aggregated points of one sweep, in grid order."""

    settings: SweepSettings
    points: list[SweepPoint] = field(default_factory=list)
    solver_names: tuple[str, ...] = SOLVER_NAMES

    @property
    def values(self) -> list[float]:
        return [p.value for p in self.points]

    def series(self, solver: str, metric: str) -> list[float]:
        """One plotted line: the metric across the grid for one solver."""
        return [p.get(solver, metric) for p in self.points]

    def average(self, solver: str, metric: str) -> float:
        """Cross-grid average (the paper's per-set headline numbers)."""
        xs = self.series(solver, metric)
        return sum(xs) / len(xs) if xs else math.nan

    def advantage_pct(self, metric: str, ours: str = "IDDE-G") -> dict[str, float]:
        """IDDE-G's average advantage over each other approach, in percent.

        For rates (higher is better): ``(ours − theirs) / theirs``.
        For latencies/times (lower is better): ``(theirs − ours) / theirs``.
        """
        higher_better = metric == "r_avg"
        out: dict[str, float] = {}
        ours_avg = self.average(ours, metric)
        for name in self.solver_names:
            if name == ours:
                continue
            theirs = self.average(name, metric)
            if theirs == 0:
                out[name] = math.nan
            elif higher_better:
                out[name] = 100.0 * (ours_avg - theirs) / theirs
            else:
                out[name] = 100.0 * (theirs - ours_avg) / theirs
        return out


def _aggregate(
    value: float,
    trials: list[TrialResult],
    solver_names,
    *,
    keep_raw: bool = False,
) -> SweepPoint:
    point = SweepPoint(value=value, reps=len(trials))
    for name in solver_names:
        means: dict[str, float] = {}
        stds: dict[str, float] = {}
        raws: dict[str, list[float]] = {}
        for metric in METRICS:
            xs = [t.metrics[name][metric] for t in trials]
            mu = sum(xs) / len(xs)
            var = sum((x - mu) ** 2 for x in xs) / len(xs)
            means[metric] = mu
            stds[metric] = math.sqrt(var)
            if keep_raw:
                raws[metric] = list(xs)
        point.mean[name] = means
        point.std[name] = stds
        if keep_raw:
            point.raw[name] = raws
    return point


def run_sweep(
    settings: SweepSettings,
    *,
    reps: int = 5,
    seed: int = 0,
    ip_time_budget_s: float = 3.0,
    solver_names: tuple[str, ...] = SOLVER_NAMES,
    parallel: ParallelConfig | None = None,
    keep_raw: bool = False,
    kernel: str = "reference",
    delivery_kernel: str = "reference",
    shards: int | str | None = None,
    tracer: Tracer | None = None,
) -> SweepResult:
    """Run one Table 2 sweep and aggregate it.

    Trials at different points and repetitions are independent; the trial
    seed is spawned from ``(seed, set name, value, rep)`` so adding points
    or repetitions never perturbs existing trials.  ``kernel`` selects the
    IDDE-G evaluation kernel per trial (results are identical either way —
    the pair is move-for-move verified — only the speed differs),
    ``delivery_kernel`` does the same for the Phase 2 placement loop, and
    ``shards`` routes the IDDE-G trials through the interference-domain
    decomposition solver (``"auto"`` or a target count; ``None`` = off).

    When a recording ``tracer`` is attached, trials run serially in this
    process — a tracer cannot aggregate across worker processes — so
    tracing a sweep observes the single-process schedule.
    """
    tracer = ensure_tracer(tracer)
    specs: list[TrialSpec] = []
    layout: list[tuple[float, int]] = []
    for value in settings.values:
        params = settings.params_for(value)
        for rep in range(reps):
            # Stable 32-bit trial seed derived from the sweep coordinates
            # (hash() is salted per process; key_to_int is not).
            trial_seed = key_to_int((seed, settings.name, float(value), rep))
            specs.append(
                TrialSpec(
                    n=int(params["n"]),
                    m=int(params["m"]),
                    k=int(params["k"]),
                    density=float(params["density"]),
                    seed=trial_seed,
                    pool_seed=seed,
                    ip_time_budget_s=ip_time_budget_s,
                    solver_names=solver_names,
                    kernel=kernel,
                    delivery_kernel=delivery_kernel,
                    shards=shards,
                )
            )
            layout.append((value, rep))

    with tracer.span(
        "sweep.run", sweep=settings.name, points=len(settings.values), reps=reps
    ):
        if tracer.enabled:
            results = [run_trial(spec, tracer=tracer) for spec in specs]
        else:
            results = parallel_map(run_trial, specs, parallel)

        points: list[SweepPoint] = []
        for value in settings.values:
            trials = [r for (v, _), r in zip(layout, results) if v == value]
            points.append(_aggregate(value, trials, solver_names, keep_raw=keep_raw))
            if tracer.enabled:
                tracer.event("sweep.point", value=float(value), reps=len(trials))
                tracer.count("sweep.points")
    return SweepResult(settings=settings, points=points, solver_names=solver_names)
