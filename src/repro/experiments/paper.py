"""One-call reproduction of the paper's full evaluation.

:func:`reproduce_all` runs every Table 2 sweep plus the Fig. 1 probe and
assembles a single markdown report (the EXPERIMENTS.md generator), with
optional CSV/JSON artifact export per sweep.  This is the programmatic
face of ``idde reproduce``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path

from ..obs.tracer import Tracer, ensure_tracer
from ..parallel import ParallelConfig
from .export import write_csv, write_json
from .figures import PAPER, shape_checks
from .latency_probe import run_latency_probe
from .report import (
    render_advantage_markdown,
    render_sweep_markdown,
    render_timing_markdown,
)
from .settings import ALL_SETS
from .sweep import SweepResult, run_sweep

__all__ = ["ReproductionReport", "reproduce_all"]


@dataclass
class ReproductionReport:
    """Everything one reproduction run produced."""

    sweeps: list[SweepResult] = field(default_factory=list)
    markdown: str = ""
    artifacts: list[Path] = field(default_factory=list)

    def all_shapes_hold(self) -> bool:
        """Whether every sweep reproduced the §4.5 headline orderings."""
        return all(
            all(shape_checks(result).values()) for result in self.sweeps
        )


def reproduce_all(
    *,
    reps: int = 5,
    seed: int = 0,
    ip_time_budget_s: float = 3.0,
    workers: int | None = None,
    output_dir: str | Path | None = None,
    tracer: Tracer | None = None,
) -> ReproductionReport:
    """Run all four sets + Fig. 1 and build the comparison report.

    Parameters
    ----------
    reps, seed, ip_time_budget_s, workers:
        Sweep execution knobs (the paper used reps=50 and a 100 s cap).
    output_dir:
        When given, per-sweep CSV + JSON series and the markdown report
        are written below it.
    tracer:
        Optional IDDE-Trace tracer; a recording tracer forces the sweeps
        serial (see :func:`~repro.experiments.sweep.run_sweep`).
    """
    tracer = ensure_tracer(tracer)
    parallel = ParallelConfig(n_workers=workers)
    report = ReproductionReport()
    out = StringIO()
    out.write("# Reproduction report\n\n")

    # Fig. 1 probe.
    probe = run_latency_probe(seed)
    means = probe.mean_ms()
    out.write("## Fig. 1 — latency motivation\n\n")
    out.write("| target | measured mean (ms) | paper (ms) |\n|---|---|---|\n")
    for target in probe.targets:
        ref = PAPER["fig1_latency_ms"].get(target, float("nan"))
        out.write(f"| {target} | {means[target]:.1f} | {ref:.0f} |\n")
    out.write("\n")

    for settings in ALL_SETS:
        result = run_sweep(
            settings,
            reps=reps,
            seed=seed,
            ip_time_budget_s=ip_time_budget_s,
            parallel=parallel,
            tracer=tracer,
        )
        report.sweeps.append(result)
        for metric in ("r_avg", "l_avg_ms"):
            out.write(render_sweep_markdown(result, metric))
            out.write("\n")
        out.write(render_advantage_markdown(result))
        out.write(f"\nshape checks: {shape_checks(result)}\n\n")

    out.write(render_timing_markdown(report.sweeps))
    report.markdown = out.getvalue()

    if output_dir is not None:
        base = Path(output_dir)
        base.mkdir(parents=True, exist_ok=True)
        for result in report.sweeps:
            stem = result.settings.name.replace(" ", "_").replace("#", "")
            report.artifacts.append(write_csv(result, base / f"{stem}.csv"))
            report.artifacts.append(write_json(result, base / f"{stem}.json"))
        md = base / "report.md"
        md.write_text(report.markdown)
        report.artifacts.append(md)

    return report
