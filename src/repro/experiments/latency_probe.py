"""Fig. 1: the edge-vs-cloud latency motivation experiment, simulated.

The paper measures end-to-end RTT from a mobile device to a nearby edge
server and to AWS data centres in Singapore, London and Frankfurt, hourly
over a week in March 2022.  Offline we reproduce the experiment with a
calibrated stochastic RTT model: a per-target propagation base (distance
bound), a lognormal queueing jitter, and a diurnal congestion component —
the standard ingredients of WAN RTT variation.  The point of the figure is
the order-of-magnitude gap between edge (≈10 ms) and intercontinental
cloud (≈100–250 ms); the probe preserves exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..rng import ensure_rng

__all__ = ["LatencyProbe", "run_latency_probe", "DEFAULT_TARGETS"]

#: Calibrated per-target base RTTs (ms): (base, jitter_sigma).
DEFAULT_TARGETS: dict[str, tuple[float, float]] = {
    "Edge": (10.0, 0.25),
    "Singapore": (92.0, 0.18),
    "London": (228.0, 0.12),
    "Frankfurt": (212.0, 0.12),
}


@dataclass(frozen=True)
class LatencyProbe:
    """The collected probe samples for all targets."""

    targets: tuple[str, ...]
    samples_ms: np.ndarray  # (T, H) — target × hourly sample

    @property
    def hours(self) -> int:
        return self.samples_ms.shape[1]

    def mean_ms(self) -> dict[str, float]:
        return {
            t: float(self.samples_ms[i].mean()) for i, t in enumerate(self.targets)
        }

    def percentile_ms(self, q: float) -> dict[str, float]:
        return {
            t: float(np.percentile(self.samples_ms[i], q))
            for i, t in enumerate(self.targets)
        }

    def edge_advantage(self) -> dict[str, float]:
        """Mean cloud-RTT over mean edge-RTT, per cloud target."""
        means = self.mean_ms()
        edge = means.get("Edge")
        if not edge:
            return {}
        return {t: means[t] / edge for t in self.targets if t != "Edge"}


def run_latency_probe(
    seed: int = 0,
    *,
    days: int = 7,
    targets: dict[str, tuple[float, float]] | None = None,
) -> LatencyProbe:
    """Collect hourly RTT samples over ``days`` simulated days.

    Each sample is ``base · lognormal(0, σ) + diurnal`` where the diurnal
    term adds up to 15 % of base during evening peak hours.
    """
    rng = ensure_rng(seed)
    targets = targets or DEFAULT_TARGETS
    hours = 24 * days
    names = tuple(targets)
    hour_of_day = np.arange(hours) % 24
    # Evening congestion bump peaking at 20:00.
    diurnal = 0.15 * np.exp(-0.5 * ((hour_of_day - 20) / 3.0) ** 2)
    samples = np.empty((len(names), hours))
    for i, name in enumerate(names):
        base, sigma = targets[name]
        jitter = rng.lognormal(mean=0.0, sigma=sigma, size=hours)
        samples[i] = base * jitter * (1.0 + diurnal)
    return LatencyProbe(targets=names, samples_ms=samples)
