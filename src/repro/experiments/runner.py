"""One experiment trial: build an instance, run every approach, measure.

A trial is fully described by a picklable :class:`TrialSpec` so it can be
executed in a worker process; the per-trial RNG streams are spawned
deterministically from the sweep's root seed (see :mod:`repro.rng`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from ..api import solve
from ..baselines import CDP, SAA, DupG, IddeIP
from ..config import DeliveryConfig, GameConfig
from ..core.idde_g import IddeG
from ..core.instance import IDDEInstance
from ..core.strategy import Solver
from ..datasets.eua import EuaPool, synthetic_eua
from ..errors import ExperimentError
from ..obs.tracer import Tracer, ensure_tracer
from ..request import SolveRequest
from ..rng import spawn_rng
from ..sharding import ShardConfig, ShardedIddeG

__all__ = ["SOLVER_NAMES", "TrialSpec", "TrialResult", "run_trial", "build_solver"]

#: The paper's five approaches in figure order.
SOLVER_NAMES: tuple[str, ...] = ("IDDE-IP", "IDDE-G", "SAA", "CDP", "DUP-G")

#: Metric keys every trial reports per solver.
METRICS: tuple[str, ...] = ("r_avg", "l_avg_ms", "time_s")


@dataclass(frozen=True)
class TrialSpec:
    """A picklable description of one trial."""

    n: int = 30
    m: int = 200
    k: int = 5
    density: float = 1.0
    seed: int = 0
    pool_seed: int = 0
    ip_time_budget_s: float = 3.0
    solver_names: tuple[str, ...] = SOLVER_NAMES
    #: Game evaluation kernel for the IDDE-G runs ("reference"/"batched");
    #: the kernel pair is move-for-move identical, so results match either way.
    kernel: str = "reference"
    #: Phase 2 delivery kernel for the IDDE-G runs ("reference"/"batched");
    #: the pair is placement-for-placement identical, only the speed differs.
    delivery_kernel: str = "reference"
    #: Interference-domain decomposition for the IDDE-G runs: ``None`` (off),
    #: ``"auto"`` (natural coverage domains), or a target shard count.
    shards: int | str | None = None

    def __post_init__(self) -> None:
        if self.n <= 0 or self.m < 0 or self.k <= 0:
            raise ExperimentError(f"bad trial dimensions N={self.n}, M={self.m}, K={self.k}")
        if self.density < 0:
            raise ExperimentError(f"bad density {self.density}")
        unknown = set(self.solver_names) - set(SOLVER_NAMES)
        if unknown:
            raise ExperimentError(f"unknown solvers {sorted(unknown)}")
        if self.kernel not in GameConfig._KERNELS:
            raise ExperimentError(
                f"unknown kernel {self.kernel!r}; choose from {GameConfig._KERNELS}"
            )
        if self.delivery_kernel not in DeliveryConfig._KERNELS:
            raise ExperimentError(
                f"unknown delivery_kernel {self.delivery_kernel!r}; "
                f"choose from {DeliveryConfig._KERNELS}"
            )
        if not (
            self.shards is None
            or self.shards == "auto"
            or (isinstance(self.shards, int) and self.shards >= 1)
        ):
            raise ExperimentError(
                f"shards must be None, 'auto' or a positive int, got {self.shards!r}"
            )

    def shard_config(self) -> ShardConfig | None:
        """The :class:`ShardConfig` this spec asks for (``None`` = unsharded).

        Trials inside a sweep may already run in worker processes, so the
        shard fan-out itself is pinned serial (``n_workers=0``) — nested
        process pools would oversubscribe the host.
        """
        if self.shards is None:
            return None
        if self.shards == "auto":
            return ShardConfig(n_workers=0)
        return ShardConfig(n_shards=int(self.shards), n_workers=0)

    def request_for(self, name: str) -> SolveRequest:
        """The :class:`~repro.request.SolveRequest` for one of this trial's
        solvers — the single spec→request mapping :func:`run_trial` uses
        (the per-solver RNG stream is stamped in at run time)."""
        is_g = name == "IDDE-G"
        return SolveRequest(
            solver=name.lower(),
            game_config=GameConfig(kernel=self.kernel) if is_g else None,
            delivery_config=(
                DeliveryConfig(kernel=self.delivery_kernel) if is_g else None
            ),
            sharding=self.shard_config() if is_g else None,
            ip_time_budget_s=self.ip_time_budget_s,
        )


@dataclass
class TrialResult:
    """Per-solver metric dictionary for one trial."""

    spec: TrialSpec
    metrics: dict[str, dict[str, float]] = field(default_factory=dict)

    def metric(self, solver: str, key: str) -> float:
        return self.metrics[solver][key]


@lru_cache(maxsize=8)
def _pool(pool_seed: int) -> EuaPool:
    """Per-process cache of the EUA-style pool (shared across trials)."""
    return synthetic_eua(pool_seed)


def build_solver(name: str, spec: TrialSpec) -> Solver:
    """Instantiate one of the paper's approaches for a trial.

    Kept for direct construction; :func:`run_trial` itself routes through
    :func:`repro.api.solve` so every front-end shares one code path.
    """
    if name == "IDDE-IP":
        return IddeIP(time_budget_s=spec.ip_time_budget_s)
    if name == "IDDE-G":
        shard_cfg = spec.shard_config()
        delivery_cfg = DeliveryConfig(kernel=spec.delivery_kernel)
        if shard_cfg is not None:
            return ShardedIddeG(
                GameConfig(kernel=spec.kernel), delivery_cfg, sharding=shard_cfg
            )
        return IddeG(GameConfig(kernel=spec.kernel), delivery_cfg)
    if name == "SAA":
        return SAA()
    if name == "CDP":
        return CDP()
    if name == "DUP-G":
        return DupG()
    raise ExperimentError(f"unknown solver {name!r}")


def build_instance(spec: TrialSpec) -> IDDEInstance:
    """Build the trial's instance from its spec (deterministic)."""
    return IDDEInstance.generate(
        n=spec.n,
        m=spec.m,
        k=spec.k,
        density=spec.density,
        seed=spec.seed,
        pool=_pool(spec.pool_seed),
    )


def run_trial(spec: TrialSpec, tracer: Tracer | None = None) -> TrialResult:
    """Execute one trial: all requested solvers on the same instance.

    Every solver sees the identical instance and its own independent RNG
    stream, so cross-solver comparisons are paired (the variance-reduction
    trick behind the paper's 50-repetition averages).  Each solver runs
    through :func:`repro.api.solve` — the same façade the CLI uses — with
    the RNG stream spawned exactly as before, so trial results are
    bit-identical to the pre-façade harness.
    """
    tracer = ensure_tracer(tracer)
    instance = build_instance(spec)
    result = TrialResult(spec=spec)
    with tracer.span(
        "trial", n=spec.n, m=spec.m, k=spec.k, seed=spec.seed, kernel=spec.kernel
    ):
        for name in spec.solver_names:
            request = spec.request_for(name).with_runtime(
                rng=spawn_rng(spec.seed, "solver", name)
            )
            solution = solve(instance, request, tracer=tracer)
            result.metrics[name] = {
                "r_avg": solution.r_avg,
                "l_avg_ms": solution.l_avg_ms,
                "time_s": solution.wall_time_s,
            }
    return result
