"""Paired statistical analysis of solver comparisons.

The paper reports plain means over 50 repetitions; reviewers increasingly
ask whether the gaps are significant.  Because every trial evaluates all
approaches on the *same* instance (see :mod:`repro.experiments.runner`),
the comparisons are paired, and the right tools are:

* :func:`paired_differences` — per-trial metric differences between two
  approaches across a sweep;
* :func:`bootstrap_ci` — a percentile bootstrap confidence interval for
  the mean of a sample (seeded, deterministic);
* :func:`win_rate` — the fraction of trials one approach beats another;
* :func:`compare` — the full paired summary used by reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..rng import ensure_rng

__all__ = ["paired_differences", "bootstrap_ci", "win_rate", "compare", "PairedComparison"]


def paired_differences(
    a: np.ndarray | list[float], b: np.ndarray | list[float]
) -> np.ndarray:
    """Per-trial differences ``a − b`` (inputs must align trial-wise)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"paired samples must align, got {a.shape} vs {b.shape}")
    return a - b


def bootstrap_ci(
    sample: np.ndarray | list[float],
    *,
    confidence: float = 0.95,
    n_boot: int = 2000,
    rng: np.random.Generator | int | None = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean of ``sample``."""
    xs = np.asarray(sample, dtype=float)
    if xs.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = ensure_rng(rng)
    idx = rng.integers(0, xs.size, size=(n_boot, xs.size))
    means = xs[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def win_rate(
    a: np.ndarray | list[float],
    b: np.ndarray | list[float],
    *,
    higher_better: bool = True,
) -> float:
    """Fraction of paired trials where ``a`` beats ``b`` (ties count ½)."""
    diff = paired_differences(a, b)
    if not higher_better:
        diff = -diff
    wins = (diff > 0).sum() + 0.5 * (diff == 0).sum()
    return float(wins / diff.size)


@dataclass(frozen=True)
class PairedComparison:
    """Summary of one paired solver comparison on one metric."""

    mean_a: float
    mean_b: float
    mean_diff: float
    ci_low: float
    ci_high: float
    win_rate: float
    n: int

    @property
    def significant(self) -> bool:
        """Whether the CI for the mean difference excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PairedComparison(Δ={self.mean_diff:+.3f} "
            f"[{self.ci_low:+.3f}, {self.ci_high:+.3f}], "
            f"win={self.win_rate:.0%}, n={self.n})"
        )


def compare(
    a: np.ndarray | list[float],
    b: np.ndarray | list[float],
    *,
    higher_better: bool = True,
    confidence: float = 0.95,
    rng: np.random.Generator | int | None = 0,
) -> PairedComparison:
    """Full paired comparison of two aligned metric samples."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    diff = paired_differences(a, b)
    lo, hi = bootstrap_ci(diff, confidence=confidence, rng=rng)
    return PairedComparison(
        mean_a=float(a.mean()),
        mean_b=float(b.mean()),
        mean_diff=float(diff.mean()),
        ci_low=lo,
        ci_high=hi,
        win_rate=win_rate(a, b, higher_better=higher_better),
        n=int(diff.size),
    )
