"""Calibration sensitivity: how environment parameters move the results.

EXPERIMENTS.md documents one deliberate deviation from the raw EUA
convention (coverage radii) and one compressed effect (latency spreads).
This harness quantifies how sensitive IDDE-G's measured advantage is to
the environment calibration, so reviewers can see which conclusions are
robust to those choices and which are artefacts of them:

* :func:`radius_sensitivity` — sweep the coverage-radius range and report
  mean covering-set size |V_j| plus IDDE-G's rate advantage: as overlap
  collapses to |V_j| → 1 the allocation game degenerates and every
  approach converges (the reason the repo uses macro-cell radii);
* :func:`parameter_sensitivity` — the generic engine behind it: build
  instances under a config transform, solve with a chosen pair of
  approaches, aggregate the advantage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..baselines import solver_by_name
from ..core.instance import IDDEInstance
from ..datasets.eua import sample_scenario, synthetic_eua
from ..datasets.melbourne import CBD_REGION
from ..datasets.synthetic import place_servers, place_users
from ..datasets.eua import EuaPool
from ..rng import ensure_rng, spawn_rng
from ..topology.graph import build_topology

__all__ = [
    "CalibrationPoint",
    "parameter_sensitivity",
    "radius_sensitivity",
]


@dataclass(frozen=True)
class CalibrationPoint:
    """Aggregated outcome of one calibration setting."""

    label: str
    mean_covering: float
    r_avg_ours: float
    r_avg_baseline: float
    l_avg_ours: float
    l_avg_baseline: float

    @property
    def rate_advantage_pct(self) -> float:
        if self.r_avg_baseline == 0:
            return float("nan")
        return 100.0 * (self.r_avg_ours - self.r_avg_baseline) / self.r_avg_baseline

    @property
    def latency_advantage_pct(self) -> float:
        if self.l_avg_baseline == 0:
            return float("nan")
        return 100.0 * (self.l_avg_baseline - self.l_avg_ours) / self.l_avg_baseline


def parameter_sensitivity(
    labels_and_builders: list[tuple[str, Callable[[int], IDDEInstance]]],
    *,
    reps: int = 3,
    ours: str = "idde-g",
    baseline: str = "cdp",
    seed: int = 0,
) -> list[CalibrationPoint]:
    """Evaluate ``ours`` vs ``baseline`` across custom instance builders.

    Each builder maps a trial seed to an instance; ``reps`` seeds are
    averaged per setting.
    """
    points: list[CalibrationPoint] = []
    for label, builder in labels_and_builders:
        covering: list[float] = []
        r_ours: list[float] = []
        r_base: list[float] = []
        l_ours: list[float] = []
        l_base: list[float] = []
        for rep in range(reps):
            instance = builder(seed + rep)
            covering.append(
                float(np.mean([len(v) for v in instance.scenario.covering_servers]))
            )
            for name, rates, lats in (
                (ours, r_ours, l_ours),
                (baseline, r_base, l_base),
            ):
                solver = solver_by_name(name)
                s = solver.solve(instance, spawn_rng(seed, label, rep, name))
                rates.append(s.r_avg)
                lats.append(s.l_avg_ms)
        points.append(
            CalibrationPoint(
                label=label,
                mean_covering=float(np.mean(covering)),
                r_avg_ours=float(np.mean(r_ours)),
                r_avg_baseline=float(np.mean(r_base)),
                l_avg_ours=float(np.mean(l_ours)),
                l_avg_baseline=float(np.mean(l_base)),
            )
        )
    return points


def _pool_with_radius(radius_range: tuple[float, float], seed: int) -> EuaPool:
    rng = ensure_rng(seed)
    server_xy, radius = place_servers(
        CBD_REGION, 125, rng, radius_range=radius_range
    )
    user_xy = place_users(server_xy, radius, 816, rng)
    return EuaPool(
        server_xy=server_xy,
        radius=radius,
        user_xy=user_xy,
        name=f"calibration-{radius_range[0]:.0f}-{radius_range[1]:.0f}",
    )


def radius_sensitivity(
    radius_ranges: list[tuple[float, float]] | None = None,
    *,
    n: int = 30,
    m: int = 200,
    k: int = 5,
    density: float = 1.0,
    reps: int = 3,
    baseline: str = "cdp",
    seed: int = 0,
) -> list[CalibrationPoint]:
    """Sweep the coverage-radius calibration (the EXPERIMENTS.md deviation).

    Returns one :class:`CalibrationPoint` per radius range, ordered as
    given.  Expect the rate advantage to shrink toward zero as the mean
    covering-set size approaches 1.
    """
    radius_ranges = radius_ranges or [
        (100.0, 150.0),  # raw EUA convention
        (175.0, 250.0),
        (250.0, 350.0),  # this repo's default
        (350.0, 450.0),
    ]

    def builder_for(radius_range: tuple[float, float]) -> Callable[[int], IDDEInstance]:
        def build(trial_seed: int) -> IDDEInstance:
            pool = _pool_with_radius(radius_range, seed)
            scenario = sample_scenario(
                pool, n, m, k, spawn_rng(trial_seed, "calibration", radius_range)
            )
            topology = build_topology(
                n, density, spawn_rng(trial_seed, "calibration-topo", radius_range)
            )
            return IDDEInstance(scenario, topology)

        return build

    settings = [
        (f"{lo:.0f}-{hi:.0f} m", builder_for((lo, hi))) for lo, hi in radius_ranges
    ]
    return parameter_sensitivity(
        settings, reps=reps, baseline=baseline, seed=seed
    )
