"""Structured export of sweep results (CSV / JSON).

The bench harness prints markdown for humans; plotting pipelines want
machine-readable series.  :func:`sweep_to_rows` flattens a
:class:`~repro.experiments.sweep.SweepResult` into tidy records (one row
per grid value × solver × metric), and the writers serialise them.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from .runner import METRICS
from .sweep import SweepResult

__all__ = ["sweep_to_rows", "write_csv", "write_json", "load_json"]

_FIELDS = ("set", "varying", "value", "solver", "metric", "mean", "std", "reps")


def sweep_to_rows(result: SweepResult) -> list[dict[str, Any]]:
    """Flatten a sweep into tidy rows (long format)."""
    rows: list[dict[str, Any]] = []
    for point in result.points:
        for solver in result.solver_names:
            for metric in METRICS:
                rows.append(
                    {
                        "set": result.settings.name,
                        "varying": result.settings.varying,
                        "value": point.value,
                        "solver": solver,
                        "metric": metric,
                        "mean": point.mean[solver][metric],
                        "std": point.std[solver][metric],
                        "reps": point.reps,
                    }
                )
    return rows


def write_csv(result: SweepResult, path: str | Path) -> Path:
    """Write the tidy rows as CSV; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_FIELDS)
        writer.writeheader()
        writer.writerows(sweep_to_rows(result))
    return path


def write_json(result: SweepResult, path: str | Path) -> Path:
    """Write the tidy rows as a JSON document; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "set": result.settings.name,
        "varying": result.settings.varying,
        "values": list(result.values),
        "solvers": list(result.solver_names),
        "rows": sweep_to_rows(result),
    }
    path.write_text(json.dumps(doc, indent=2))
    return path


def load_json(path: str | Path) -> dict[str, Any]:
    """Load a document written by :func:`write_json`."""
    return json.loads(Path(path).read_text())
