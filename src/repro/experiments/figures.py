"""The paper's reported reference numbers and figure-series extraction.

``PAPER`` embeds every concrete number the paper's Section 4.5 states in
prose (figure axes are only read approximately, so only the stated values
are encoded).  The benchmark harness prints measured series next to these
references, and EXPERIMENTS.md records the comparison.

All rates are MB/s; latencies are ms; times are seconds.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping

from .sweep import SweepResult

__all__ = ["PAPER", "series", "shape_checks"]


def _freeze(d: dict) -> Mapping:
    return MappingProxyType(d)


#: Reference values stated verbatim in the paper's Section 4.5.
PAPER: Mapping = _freeze(
    {
        # §4.5.1 headline: IDDE-G's average advantage across all experiments.
        "overall_advantage_pct": _freeze(
            {
                "r_avg": _freeze(
                    {"IDDE-IP": 9.20, "SAA": 53.27, "CDP": 29.40, "DUP-G": 41.56}
                ),
                "l_avg_ms": _freeze(
                    {"IDDE-IP": 82.61, "SAA": 71.60, "CDP": 84.60, "DUP-G": 85.04}
                ),
            }
        ),
        # Set #1 per-set advantages (rate, latency).
        "set1_advantage_pct": _freeze(
            {
                "r_avg": _freeze(
                    {"IDDE-IP": 10.36, "SAA": 55.55, "CDP": 28.99, "DUP-G": 41.51}
                ),
                "l_avg_ms": _freeze(
                    {"IDDE-IP": 83.16, "SAA": 70.42, "CDP": 84.05, "DUP-G": 82.76}
                ),
            }
        ),
        # Set #2: average rates at the grid endpoints (M=50 → M=350).
        "set2_rate_endpoints": _freeze(
            {
                "IDDE-G": (196.71, 68.48),
                "IDDE-IP": (196.06, 62.01),
                "SAA": (143.75, 49.60),
                "CDP": (153.62, 60.87),
                "DUP-G": (174.76, 58.26),
            }
        ),
        # Set #3: average latencies at the grid endpoints (K=2 → K=8) and
        # the cross-grid averages.
        "set3_latency_endpoints": _freeze(
            {
                "IDDE-G": (2.61, 7.52),
                "IDDE-IP": (18.58, 38.50),
                "SAA": (9.33, 22.12),
                "CDP": (24.12, 36.80),
                "DUP-G": (32.16, 48.88),
            }
        ),
        "set3_latency_average": _freeze(
            {
                "IDDE-G": 5.22,
                "IDDE-IP": 27.98,
                "SAA": 16.88,
                "CDP": 31.26,
                "DUP-G": 41.10,
            }
        ),
        # Set #4 advantages.
        "set4_advantage_pct": _freeze(
            {
                "r_avg": _freeze(
                    {"IDDE-IP": 13.94, "SAA": 62.92, "CDP": 36.87, "DUP-G": 54.91}
                ),
                "l_avg_ms": _freeze(
                    {"IDDE-IP": 90.38, "SAA": 75.91, "CDP": 89.63, "DUP-G": 86.72}
                ),
            }
        ),
        # Fig. 7 computation times (averages across the four sets, seconds).
        "computation_time_s": _freeze(
            {
                "IDDE-IP": 135.3881,
                "SAA": 0.6626,
                "IDDE-G": 0.3620,
                "CDP": 0.1691,
                "DUP-G": 0.3716,
            }
        ),
        # Fig. 1 motivation medians (ms), calibrated for the probe model.
        "fig1_latency_ms": _freeze(
            {"Edge": 12.0, "Singapore": 98.0, "London": 237.0, "Frankfurt": 221.0}
        ),
    }
)


def series(result: SweepResult, metric: str) -> dict[str, list[float]]:
    """Per-solver plotted lines for one metric of one sweep."""
    return {name: result.series(name, metric) for name in result.solver_names}


def shape_checks(result: SweepResult) -> dict[str, bool]:
    """The qualitative claims of §4.5 for one sweep, as booleans.

    * ``idde_g_best_rate`` — IDDE-G's cross-grid average rate is the highest;
    * ``idde_g_best_latency`` — and its average latency the lowest;
    * ``ip_slowest`` — IDDE-IP costs the most computation time.
    """
    rates = {s: result.average(s, "r_avg") for s in result.solver_names}
    lats = {s: result.average(s, "l_avg_ms") for s in result.solver_names}
    times = {s: result.average(s, "time_s") for s in result.solver_names}
    return {
        "idde_g_best_rate": max(rates, key=rates.get) == "IDDE-G",
        "idde_g_best_latency": min(lats, key=lats.get) == "IDDE-G",
        "ip_slowest": max(times, key=times.get) == "IDDE-IP",
    }
