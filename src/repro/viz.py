"""Terminal visualisation: scenario maps and metric sparklines.

No plotting backend is available offline, so the examples and CLI render
with text: :func:`scenario_map` draws servers, coverage and users on a
character grid; :func:`sparkline` and :func:`series_panel` compress sweep
series into unicode bars for quick shape reading.
"""

from __future__ import annotations

import math

import numpy as np

from .core.profiles import AllocationProfile
from .types import Scenario

__all__ = ["scenario_map", "sparkline", "series_panel"]

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float] | np.ndarray) -> str:
    """Render a numeric series as a unicode bar string.

    Constant (or empty) series render as mid-height bars.
    """
    xs = np.asarray(list(values), dtype=float)
    if xs.size == 0:
        return ""
    lo, hi = float(xs.min()), float(xs.max())
    if not math.isfinite(lo) or not math.isfinite(hi):
        raise ValueError("sparkline requires finite values")
    if hi - lo < 1e-12:
        return _BARS[3] * xs.size
    scaled = (xs - lo) / (hi - lo) * (len(_BARS) - 1)
    return "".join(_BARS[int(round(v))] for v in scaled)


def series_panel(series: dict[str, list[float]], *, label_width: int = 10) -> str:
    """One sparkline per named series, aligned, with min→max annotations."""
    lines = []
    for name, values in series.items():
        xs = list(values)
        if not xs:
            continue
        lines.append(
            f"{name:>{label_width}} {sparkline(xs)}  "
            f"[{min(xs):.1f} … {max(xs):.1f}]"
        )
    return "\n".join(lines)


def scenario_map(
    scenario: Scenario,
    alloc: AllocationProfile | None = None,
    *,
    width: int = 72,
    height: int = 24,
) -> str:
    """Draw the scenario on a character grid.

    Glyphs: ``#`` server site, ``.`` covered ground, digits/letters users
    (the glyph encodes the allocated server index modulo 36; ``?`` marks
    unallocated users).  When two entities share a cell, servers win, then
    users.
    """
    if width < 8 or height < 4:
        raise ValueError(f"grid too small: {width}x{height}")
    xs = np.concatenate([scenario.server_xy[:, 0], scenario.user_xy[:, 0]])
    ys = np.concatenate([scenario.server_xy[:, 1], scenario.user_xy[:, 1]])
    pad = max(float(scenario.radius.max()), 1.0)
    x0, x1 = xs.min() - pad, xs.max() + pad
    y0, y1 = ys.min() - pad, ys.max() + pad

    def to_cell(x: float, y: float) -> tuple[int, int]:
        cx = int((x - x0) / (x1 - x0) * (width - 1))
        cy = int((y - y0) / (y1 - y0) * (height - 1))
        return min(max(cy, 0), height - 1), min(max(cx, 0), width - 1)

    grid = [[" "] * width for _ in range(height)]

    # Coverage shading.
    for r in range(height):
        for c in range(width):
            gx = x0 + (c + 0.5) / width * (x1 - x0)
            gy = y0 + (r + 0.5) / height * (y1 - y0)
            d2 = (scenario.server_xy[:, 0] - gx) ** 2 + (
                scenario.server_xy[:, 1] - gy
            ) ** 2
            if (d2 <= scenario.radius**2).any():
                grid[r][c] = "."

    glyphs = "0123456789abcdefghijklmnopqrstuvwxyz"
    for j in range(scenario.n_users):
        r, c = to_cell(*scenario.user_xy[j])
        if alloc is not None and alloc.server[j] >= 0:
            grid[r][c] = glyphs[int(alloc.server[j]) % len(glyphs)]
        else:
            grid[r][c] = "?" if alloc is not None else "o"

    for i in range(scenario.n_servers):
        r, c = to_cell(*scenario.server_xy[i])
        grid[r][c] = "#"

    # y axis grows upward: print rows reversed.
    return "\n".join("".join(row) for row in reversed(grid))
