"""Streaming workloads: lazy event streams, epoch batching, trace replay.

The live-traffic layer the ROADMAP asks for: Poisson-arrival /
Zipf-popularity event generators (icarus-style lazy iterators),
``idde-events/1`` JSONL replay, and the :class:`WorkloadState` fold that
turns batches of events into per-epoch :class:`~repro.types.Scenario`
snapshots for warm-started re-solves through :func:`repro.api.solve`.
"""

from .events import (
    EpochBatch,
    Event,
    Move,
    PopularityShift,
    UserJoin,
    UserLeave,
    WorkloadState,
)
from .generators import StreamConfig, batch_by_count, batch_by_time, poisson_zipf_stream
from .replay import EVENTS_SCHEMA, load_events, parse_event, save_events

__all__ = [
    "EVENTS_SCHEMA",
    "EpochBatch",
    "Event",
    "Move",
    "PopularityShift",
    "StreamConfig",
    "UserJoin",
    "UserLeave",
    "WorkloadState",
    "batch_by_count",
    "batch_by_time",
    "load_events",
    "parse_event",
    "poisson_zipf_stream",
    "save_events",
]
