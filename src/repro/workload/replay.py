"""Trace-driven replay: stream events to and from ``idde-events/1`` JSONL.

One JSON object per line; the first line is a header carrying the schema
tag and the user/item universe the trace was generated for, so a replay
against a mismatched instance fails loudly instead of silently corrupting
indices.  Both directions are *streaming*: :func:`save_events` consumes
any event iterable line-by-line (a lazily generated million-event stream
never materialises), and :func:`load_events` yields events straight off
the file handle.

Wire format::

    {"schema": "idde-events/1", "n_users": 200, "n_data": 5}
    {"kind": "move", "t": 1.93, "user": 17, "x": 812.4, "y": 409.1}
    {"kind": "leave", "t": 4.02, "user": 3}
    {"kind": "join", "t": 9.77, "user": 3}
    {"kind": "shift", "t": 12.5, "order": [1, 0, 2, 3, 4]}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Iterator

from ..errors import DatasetError
from .events import Event, Move, PopularityShift, UserJoin, UserLeave

__all__ = ["EVENTS_SCHEMA", "parse_event", "save_events", "load_events"]

EVENTS_SCHEMA = "idde-events/1"

_KINDS: dict[str, type[Event]] = {
    "join": UserJoin,
    "leave": UserLeave,
    "move": Move,
    "shift": PopularityShift,
}


def save_events(
    events: Iterable[Event],
    path: str | Path,
    *,
    n_users: int,
    n_data: int,
) -> int:
    """Write a header line plus one line per event; returns the event count.

    The iterable is consumed incrementally — safe to hand a lazy generator
    of arbitrary length.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        header = {"schema": EVENTS_SCHEMA, "n_users": n_users, "n_data": n_data}
        fh.write(json.dumps(header) + "\n")
        for ev in events:
            fh.write(json.dumps(ev.to_dict()) + "\n")
            count += 1
    return count


def parse_event(doc: dict[str, Any], *, where: str = "event") -> Event:
    """One ``idde-events/1`` JSON object → its :class:`Event` dataclass.

    The single decoder both the file replay loop and the IDDE-Serve
    ``POST /v1/events`` endpoint route through; ``where`` labels the error
    (``"line 7"`` for files, ``"events[3]"`` for request bodies).  The
    input mapping is not mutated.
    """
    if not isinstance(doc, dict):
        raise DatasetError(f"{where}: event must be a JSON object, got {type(doc).__name__}")
    doc = dict(doc)
    kind = doc.pop("kind", None)
    cls = _KINDS.get(kind)
    if cls is None:
        raise DatasetError(f"{where}: unknown event kind {kind!r}")
    if cls is PopularityShift and "order" in doc:
        doc["order"] = tuple(int(i) for i in doc["order"])
    try:
        return cls(**doc)
    except TypeError as exc:
        raise DatasetError(f"{where}: malformed {kind!r} event: {exc}") from exc


def load_events(
    path: str | Path,
    *,
    expect_users: int | None = None,
    expect_data: int | None = None,
) -> Iterator[Event]:
    """Yield events from an ``idde-events/1`` file, lazily.

    ``expect_users`` / ``expect_data`` (pass the target instance's sizes)
    guard against replaying a trace onto the wrong universe.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.strip():
            raise DatasetError(f"{path}: empty event file (missing header)")
        header = json.loads(first)
        if header.get("schema") != EVENTS_SCHEMA:
            raise DatasetError(
                f"{path}: expected schema {EVENTS_SCHEMA!r}, "
                f"got {header.get('schema')!r}"
            )
        if expect_users is not None and header.get("n_users") != expect_users:
            raise DatasetError(
                f"{path}: trace covers {header.get('n_users')} users, "
                f"instance has {expect_users}"
            )
        if expect_data is not None and header.get("n_data") != expect_data:
            raise DatasetError(
                f"{path}: trace covers {header.get('n_data')} items, "
                f"instance has {expect_data}"
            )
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            yield parse_event(json.loads(line), where=f"line {lineno}")
