"""Lazy Poisson/Zipf event-stream generation and epoch batching.

The generator shape follows the caching-simulator tradition (icarus-style
iterator workloads): events are *yielded*, never materialised, so a
million-event day-in-the-life run holds one event in memory at a time.

:func:`poisson_zipf_stream` is a continuous-time Markov chain over the
fixed user universe, simulated by competing exponentials:

* each **inactive** user re-arrives at rate ``arrival_rate`` (→
  :class:`~repro.workload.events.UserJoin`);
* each **active** user departs at rate ``departure_rate`` (→
  :class:`~repro.workload.events.UserLeave`) and takes a Gaussian step of
  scale ``move_sigma`` at rate ``move_rate`` (→
  :class:`~repro.workload.events.Move`, clipped to the region bounds);
* the catalogue drifts at global rate ``shift_rate``: two item ranks drawn
  from the Zipf(``zipf_exponent``) popularity law swap places (→
  :class:`~repro.workload.events.PopularityShift`) — popular items churn
  position more often than tail items, the classic popularity-drift model.

The generator tracks its own copy of positions and the active mask so the
``Move`` events it emits carry *absolute* coordinates — a saved stream
replays exactly (see :mod:`repro.workload.replay`) without re-running the
process.

:func:`batch_by_count` / :func:`batch_by_time` group any event iterator
into :class:`~repro.workload.events.EpochBatch` windows, again lazily.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from ..config import WorkloadConfig
from ..datasets.workload import zipf_weights
from ..errors import ConfigurationError
from ..rng import ensure_rng
from ..types import Scenario
from .events import EpochBatch, Event, Move, PopularityShift, UserJoin, UserLeave

__all__ = [
    "StreamConfig",
    "poisson_zipf_stream",
    "batch_by_count",
    "batch_by_time",
]


@dataclass(frozen=True)
class StreamConfig:
    """Rates (per second) and shape parameters of the synthetic stream.

    Per-user rates multiply by the current pool size, so the aggregate
    event intensity scales with the instance — the M fixture at the
    defaults produces a mobility-dominated mix with a steady trickle of
    churn, roughly 40 events per simulated minute for 200 users.
    """

    arrival_rate: float = 0.02  #: per inactive user
    departure_rate: float = 0.005  #: per active user
    move_rate: float = 0.05  #: per active user
    shift_rate: float = 0.01  #: global catalogue-drift rate
    move_sigma: float = 60.0  #: Gaussian step scale, metres
    zipf_exponent: float = WorkloadConfig().zipf_exponent

    def __post_init__(self) -> None:
        for name in ("arrival_rate", "departure_rate", "move_rate", "shift_rate"):
            if getattr(self, name) < 0.0:
                raise ConfigurationError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.move_sigma <= 0.0:
            raise ConfigurationError(f"move_sigma must be > 0, got {self.move_sigma}")
        if self.zipf_exponent < 0.0:
            raise ConfigurationError(
                f"zipf_exponent must be >= 0, got {self.zipf_exponent}"
            )


def _bounds_of(scenario: Scenario) -> tuple[float, float, float, float]:
    """The region users roam in: the server/user bounding box, padded by
    the largest coverage radius so edge users can still wander near the rim."""
    xs = np.concatenate([scenario.server_xy[:, 0], scenario.user_xy[:, 0]])
    ys = np.concatenate([scenario.server_xy[:, 1], scenario.user_xy[:, 1]])
    pad = float(scenario.radius.max())
    return (
        float(xs.min()) - pad,
        float(ys.min()) - pad,
        float(xs.max()) + pad,
        float(ys.max()) + pad,
    )


def poisson_zipf_stream(
    scenario: Scenario,
    rng: object = None,
    config: StreamConfig | None = None,
    *,
    n_events: int | None = None,
    horizon_s: float | None = None,
    initial_active: np.ndarray | None = None,
    bounds: tuple[float, float, float, float] | None = None,
) -> Iterator[Event]:
    """Yield a lazily-generated event stream over ``scenario``'s users.

    Stop after ``n_events`` events, at simulated time ``horizon_s``,
    or never (an infinite stream) if neither is given — callers must then
    bound consumption themselves (e.g. ``itertools.islice``).
    """
    cfg = config or StreamConfig()
    if n_events is not None and n_events < 0:
        raise ConfigurationError(f"n_events must be >= 0, got {n_events}")
    gen = ensure_rng(rng)
    m = scenario.n_users
    active = (
        np.ones(m, dtype=bool)
        if initial_active is None
        else np.asarray(initial_active, dtype=bool).copy()
    )
    if active.shape != (m,):
        raise ConfigurationError(
            f"initial_active shape {active.shape} mismatches {m} users"
        )
    positions = scenario.user_xy.astype(float).copy()
    xmin, ymin, xmax, ymax = bounds if bounds is not None else _bounds_of(scenario)
    zipf = zipf_weights(scenario.n_data, cfg.zipf_exponent)

    t = 0.0
    emitted = 0
    while n_events is None or emitted < n_events:
        n_active = int(active.sum())
        n_inactive = m - n_active
        rates = np.array(
            [
                cfg.arrival_rate * n_inactive,
                cfg.departure_rate * n_active,
                cfg.move_rate * n_active,
                cfg.shift_rate,
            ]
        )
        total = float(rates.sum())
        if total <= 0.0:
            raise ConfigurationError(
                "event process is dead: all rates are zero for the current state"
            )
        t += float(gen.exponential(1.0 / total))
        if horizon_s is not None and t >= horizon_s:
            return
        choice = int(gen.choice(4, p=rates / total))
        if choice == 0:
            user = int(gen.choice(np.flatnonzero(~active)))
            active[user] = True
            yield UserJoin(t=t, user=user)
        elif choice == 1:
            user = int(gen.choice(np.flatnonzero(active)))
            active[user] = False
            yield UserLeave(t=t, user=user)
        elif choice == 2:
            user = int(gen.choice(np.flatnonzero(active)))
            step = gen.normal(0.0, cfg.move_sigma, size=2)
            x = float(np.clip(positions[user, 0] + step[0], xmin, xmax))
            y = float(np.clip(positions[user, 1] + step[1], ymin, ymax))
            positions[user] = (x, y)
            yield Move(t=t, user=user, x=x, y=y)
        else:
            k = scenario.n_data
            order = np.arange(k, dtype=np.int64)
            if k >= 2:
                a, b = gen.choice(k, size=2, replace=False, p=zipf)
                order[[a, b]] = order[[b, a]]
            yield PopularityShift(t=t, order=tuple(int(i) for i in order))
        emitted += 1


def batch_by_count(events: Iterable[Event], per_epoch: int) -> Iterator[EpochBatch]:
    """Group an event iterator into fixed-size epochs, lazily.

    The final (possibly short) remainder batch is emitted too, so every
    event reaches the consumer.
    """
    if per_epoch <= 0:
        raise ConfigurationError(f"per_epoch must be > 0, got {per_epoch}")
    index = 0
    t_start = 0.0
    buf: list[Event] = []
    for ev in events:
        buf.append(ev)
        if len(buf) == per_epoch:
            yield EpochBatch(index, t_start, buf[-1].t, tuple(buf))
            index += 1
            t_start = buf[-1].t
            buf = []
    if buf:
        yield EpochBatch(index, t_start, buf[-1].t, tuple(buf))


def batch_by_time(events: Iterable[Event], epoch_s: float) -> Iterator[EpochBatch]:
    """Group an event iterator into fixed-duration epochs, lazily.

    Epoch ``i`` covers ``[i*epoch_s, (i+1)*epoch_s)``; quiet windows with
    no events are skipped rather than emitted empty (an empty batch would
    re-solve an unchanged instance).
    """
    if epoch_s <= 0.0:
        raise ConfigurationError(f"epoch_s must be > 0, got {epoch_s}")
    index = 0
    buf: list[Event] = []
    for ev in events:
        while ev.t >= (index + 1) * epoch_s:
            if buf:
                yield EpochBatch(
                    index, index * epoch_s, (index + 1) * epoch_s, tuple(buf)
                )
                buf = []
            index += 1
        buf.append(ev)
    if buf:
        yield EpochBatch(index, index * epoch_s, (index + 1) * epoch_s, tuple(buf))
