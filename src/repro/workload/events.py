"""Streaming workload events and their application to scenario state.

The event vocabulary covers the paper's closing future-work scenario —
"the dynamics of user movements and data migrations" — over a *fixed user
universe* (array shapes never change, so profiles stay index-aligned
across epochs, exactly like :mod:`repro.dynamics.churn`):

* :class:`UserJoin` / :class:`UserLeave` — a user (re)enters or leaves the
  system (the active mask flips; an absent user requests nothing and
  allocates nowhere, the paper's ``α_j = (0,0)`` state);
* :class:`Move` — a user's position changes (absolute coordinates, so a
  replayed trace is exact regardless of what generated it);
* :class:`PopularityShift` — demand migrates across the catalogue: the
  request matrix's item columns are permuted by ``order``
  (``requests[:, order]``), the rank-rotation model of content-popularity
  drift.  The IDDE-U benefit function never reads requests, so a shift
  perturbs only the delivery phase — warm starts survive it untouched.

Events are frozen dataclasses with a float timestamp ``t`` (seconds) and
serialise to one JSON object each (see :mod:`repro.workload.replay`).
:class:`EpochBatch` groups consecutive events into one re-solve epoch;
:class:`WorkloadState` folds batches into the mutable scenario state
(positions, active mask, requests) and projects :class:`~repro.types.Scenario`
snapshots for the solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from ..errors import ScenarioError
from ..types import Scenario

__all__ = [
    "Event",
    "UserJoin",
    "UserLeave",
    "Move",
    "PopularityShift",
    "EpochBatch",
    "WorkloadState",
]


@dataclass(frozen=True)
class Event:
    """Base class: one timestamped workload event."""

    t: float

    #: Wire name used by the ``idde-events/1`` JSONL schema.
    kind = "event"

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"kind": self.kind, "t": self.t}
        for name in self.__dataclass_fields__:
            if name != "t":
                value = getattr(self, name)
                doc[name] = list(value) if isinstance(value, tuple) else value
        return doc


@dataclass(frozen=True)
class UserJoin(Event):
    """User ``user`` (re)arrives: it becomes active, unallocated."""

    user: int
    kind = "join"


@dataclass(frozen=True)
class UserLeave(Event):
    """User ``user`` departs: inactive, detached, requests nothing."""

    user: int
    kind = "leave"


@dataclass(frozen=True)
class Move(Event):
    """User ``user`` is now at absolute position ``(x, y)`` metres."""

    user: int
    x: float
    y: float
    kind = "move"


@dataclass(frozen=True)
class PopularityShift(Event):
    """Demand rotates across the catalogue: ``requests = requests[:, order]``.

    ``order`` is a permutation of ``range(K)``: new item-column ``k`` takes
    the old column ``order[k]``'s requesters.
    """

    order: tuple[int, ...]
    kind = "shift"


@dataclass(frozen=True)
class EpochBatch:
    """One epoch's worth of events, in timestamp order."""

    index: int
    t_start: float
    t_end: float
    events: tuple[Event, ...]

    @property
    def n_events(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EpochBatch(#{self.index}, [{self.t_start:.1f}, {self.t_end:.1f})s, "
            f"{self.n_events} events)"
        )


class WorkloadState:
    """Mutable scenario state an event stream evolves.

    Holds the *pristine* request matrix (inactive users keep their demand
    rows so a re-arrival restores them); :meth:`scenario` projects the
    solver-facing snapshot with inactive rows zeroed, the
    :func:`~repro.dynamics.churn.apply_churn` convention.
    """

    __slots__ = ("positions", "active", "requests")

    def __init__(
        self,
        positions: np.ndarray,
        active: np.ndarray,
        requests: np.ndarray,
    ) -> None:
        self.positions = np.asarray(positions, dtype=float).copy()
        self.active = np.asarray(active, dtype=bool).copy()
        self.requests = np.asarray(requests, dtype=bool).copy()
        m = self.positions.shape[0]
        if self.positions.shape != (m, 2):
            raise ScenarioError(f"positions must be (M, 2), got {self.positions.shape}")
        if self.active.shape != (m,):
            raise ScenarioError(
                f"active mask shape {self.active.shape} mismatches {m} users"
            )
        if self.requests.ndim != 2 or self.requests.shape[0] != m:
            raise ScenarioError(
                f"requests must be (M, K), got {self.requests.shape}"
            )

    @classmethod
    def from_scenario(
        cls, scenario: Scenario, active: np.ndarray | None = None
    ) -> "WorkloadState":
        """Initial state: the scenario's positions/requests, all-active by
        default (pass the churn mask to start partially populated)."""
        if active is None:
            active = np.ones(scenario.n_users, dtype=bool)
        return cls(scenario.user_xy, active, scenario.requests)

    @property
    def n_users(self) -> int:
        return self.positions.shape[0]

    @property
    def n_active(self) -> int:
        return int(self.active.sum())

    def apply(self, events: "EpochBatch | Iterator[Event] | tuple[Event, ...]") -> int:
        """Fold events into the state in order; returns how many applied."""
        n = 0
        for ev in events:
            self._apply_one(ev)
            n += 1
        return n

    def _apply_one(self, ev: Event) -> None:
        if isinstance(ev, UserJoin):
            self._check_user(ev.user)
            self.active[ev.user] = True
        elif isinstance(ev, UserLeave):
            self._check_user(ev.user)
            self.active[ev.user] = False
        elif isinstance(ev, Move):
            self._check_user(ev.user)
            self.positions[ev.user, 0] = ev.x
            self.positions[ev.user, 1] = ev.y
        elif isinstance(ev, PopularityShift):
            k = self.requests.shape[1]
            order = np.asarray(ev.order, dtype=np.int64)
            if order.shape != (k,) or not np.array_equal(
                np.sort(order), np.arange(k)
            ):
                raise ScenarioError(
                    f"shift order must be a permutation of range({k}), got {ev.order}"
                )
            self.requests = self.requests[:, order]
        else:
            raise ScenarioError(f"unknown event type {type(ev).__name__}")

    def _check_user(self, user: int) -> None:
        if not (0 <= user < self.n_users):
            raise ScenarioError(
                f"event user {user} out of range [0, {self.n_users})"
            )

    def scenario(self, base: Scenario) -> Scenario:
        """Project the solver-facing snapshot onto ``base``'s fixed entities
        (servers, storage, channels, powers, sizes); inactive users' request
        rows are zeroed so they contribute no demand."""
        if base.n_users != self.n_users:
            raise ScenarioError(
                f"state covers {self.n_users} users, scenario has {base.n_users}"
            )
        requests = self.requests.copy()
        requests[~self.active] = False
        return Scenario(
            server_xy=base.server_xy,
            radius=base.radius,
            storage=base.storage,
            channels=base.channels,
            user_xy=self.positions,
            power=base.power,
            rmax=base.rmax,
            sizes=base.sizes,
            requests=requests,
        )
