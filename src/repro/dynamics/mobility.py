"""User mobility models.

Both models operate on an ``(M, 2)`` position array and a bounding
:class:`~repro.geometry.Region`, advancing positions by one epoch of
``dt`` seconds per :meth:`step`.  Speeds follow the pedestrian/vehicle
mix customary in edge-computing mobility studies (default 0.5–3 m/s).

* :class:`RandomWaypoint` — each user walks toward a private target at a
  private speed and draws a fresh target on arrival (the classic model;
  produces smooth, persistent trajectories);
* :class:`ConfinedRandomWalk` — i.i.d. Gaussian steps reflected at the
  region boundary (produces jittery, diffusive motion; a harsher test of
  allocation stability).
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import ScenarioError
from ..geometry import Region
from ..rng import ensure_rng

__all__ = ["MobilityModel", "RandomWaypoint", "ConfinedRandomWalk"]


class MobilityModel(abc.ABC):
    """Stateful mobility process over a fixed user population."""

    def __init__(self, positions: np.ndarray, region: Region):
        positions = np.asarray(positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ScenarioError(f"positions must be (M, 2), got {positions.shape}")
        self.region = region
        self.positions = np.clip(
            positions,
            [region.x0, region.y0],
            [region.x1, region.y1],
        )

    @property
    def n_users(self) -> int:
        return self.positions.shape[0]

    @abc.abstractmethod
    def step(self, dt: float) -> np.ndarray:
        """Advance all users by ``dt`` seconds; returns the new ``(M, 2)``
        positions (also stored on the model)."""

    def _clip(self) -> None:
        np.clip(
            self.positions[:, 0], self.region.x0, self.region.x1, out=self.positions[:, 0]
        )
        np.clip(
            self.positions[:, 1], self.region.y0, self.region.y1, out=self.positions[:, 1]
        )


class RandomWaypoint(MobilityModel):
    """Walk to a uniformly random target, then pick another.

    Parameters
    ----------
    speed_range:
        Per-user speeds drawn uniformly (m/s) and kept for the user's
        lifetime.
    """

    def __init__(
        self,
        positions: np.ndarray,
        region: Region,
        rng: np.random.Generator | int | None = None,
        *,
        speed_range: tuple[float, float] = (0.5, 3.0),
    ):
        super().__init__(positions, region)
        lo, hi = speed_range
        if not (0 < lo <= hi):
            raise ScenarioError(f"bad speed_range {speed_range}")
        self.rng = ensure_rng(rng)
        self.speeds = self.rng.uniform(lo, hi, size=self.n_users)
        self.targets = self._draw_targets(np.arange(self.n_users))

    def _draw_targets(self, users: np.ndarray) -> np.ndarray:
        xs = self.rng.uniform(self.region.x0, self.region.x1, size=len(users))
        ys = self.rng.uniform(self.region.y0, self.region.y1, size=len(users))
        fresh = np.column_stack([xs, ys])
        if len(users) == self.n_users:
            return fresh
        targets = self.targets
        targets[users] = fresh
        return targets

    def step(self, dt: float) -> np.ndarray:
        if dt < 0:
            raise ScenarioError(f"negative dt {dt}")
        delta = self.targets - self.positions
        dist = np.linalg.norm(delta, axis=1)
        reach = self.speeds * dt
        arriving = dist <= reach
        moving = ~arriving & (dist > 0)
        # Move the travellers proportionally along their heading.
        scale = np.zeros(self.n_users)
        scale[moving] = reach[moving] / dist[moving]
        self.positions += delta * scale[:, None]
        # Arrivals land exactly on target and redraw.
        self.positions[arriving] = self.targets[arriving]
        if arriving.any():
            self.targets = self._draw_targets(np.flatnonzero(arriving))
        self._clip()
        return self.positions


class ConfinedRandomWalk(MobilityModel):
    """Gaussian steps with reflection at the region boundary."""

    def __init__(
        self,
        positions: np.ndarray,
        region: Region,
        rng: np.random.Generator | int | None = None,
        *,
        sigma: float = 1.5,
    ):
        super().__init__(positions, region)
        if sigma <= 0:
            raise ScenarioError(f"sigma must be > 0, got {sigma}")
        self.rng = ensure_rng(rng)
        #: Per-second displacement scale (m / sqrt(s)).
        self.sigma = sigma

    def step(self, dt: float) -> np.ndarray:
        if dt < 0:
            raise ScenarioError(f"negative dt {dt}")
        step = self.rng.normal(0.0, self.sigma * np.sqrt(max(dt, 0.0)), size=(self.n_users, 2))
        self.positions += step
        # Reflect at the boundary (one bounce is enough for sane sigmas;
        # clip catches pathological steps).
        for axis, lo, hi in ((0, self.region.x0, self.region.x1), (1, self.region.y0, self.region.y1)):
            coord = self.positions[:, axis]
            over = coord > hi
            under = coord < lo
            coord[over] = 2 * hi - coord[over]
            coord[under] = 2 * lo - coord[under]
        self._clip()
        return self.positions
