"""The dynamic IDDE epoch loop, driven by streaming workload events.

Each epoch consumes one :class:`~repro.workload.EpochBatch` of events
(user joins/leaves, moves, popularity shifts — see
:mod:`repro.workload`), folds it into the scenario state, and re-solves
through the :func:`repro.api.solve` façade — so every epoch composes with
tracing (spans ``timeline.epoch`` / ``workload.batch``), sharding, the
batched kernels, and yields a full schema-versioned
:class:`~repro.api.Solution` on its :class:`EpochRecord`.

The classic mobility-model entry point (:meth:`DynamicSimulation.run`)
still exists: it *adapts* a :class:`~repro.dynamics.mobility.MobilityModel`
plus optional :class:`~repro.dynamics.churn.PoissonChurn` into that same
event stream, so both front-ends exercise one engine.

Re-solve policies
-----------------
``"warm"``
    Re-enter the IDDE-U game from the previous equilibrium
    (``api.solve(..., warm_start=prev)``; the façade repairs the profile
    first).  The expected production mode: churn-proportional effort,
    certificate still proven on the full instance.
``"cold"``
    Re-solve from scratch every epoch (the static algorithm replayed —
    the paper's implicit baseline for dynamic scenarios).
``"static"``
    Never re-solve: keep the initial strategy, only repairing allocations
    that became infeasible (uncovered users detach and fall back to the
    cloud).  Shows how fast a stale strategy decays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..config import DeliveryConfig, GameConfig
from ..core.instance import IDDEInstance
from ..core.objectives import evaluate
from ..core.profiles import DeliveryProfile
from ..core.repair import repair_allocation
from ..errors import ExperimentError
from ..obs.tracer import Tracer, ensure_tracer
from ..rng import ensure_rng
from ..workload.events import EpochBatch, Event, Move, UserJoin, UserLeave, WorkloadState
from .churn import PoissonChurn
from .migration import MigrationPlan, plan_migration
from .mobility import MobilityModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..api import Solution
    from ..sharding import ShardConfig

__all__ = ["DynamicSimulation", "EpochRecord"]

_POLICIES = ("warm", "cold", "static")


@dataclass(frozen=True)
class EpochRecord:
    """Metrics for one epoch of the dynamic simulation.

    ``r_avg`` follows Eq. (5) — averaged over the full user universe —
    while ``active_users`` lets callers renormalise when churn leaves part
    of the universe inactive (inactive users contribute zero rate, like
    the paper's ``α_j = (0,0)`` state).

    ``reallocated_users`` changes meaning at the boundary: at epoch 0 it
    is the *cold build-up* — ``n_allocated``, every user the initial solve
    placed — while from epoch 1 on it counts users whose (server, channel)
    pair *changed* relative to the previous epoch.  That is why
    :meth:`DynamicSimulation.summarize` excludes epoch 0 from the churn
    statistics.

    ``solution`` carries the full façade :class:`~repro.api.Solution` for
    ``warm``/``cold`` epochs (certificate, config, trace-ready document)
    and is ``None`` for ``static`` epochs, which never re-solve.
    """

    epoch: int
    r_avg: float
    l_avg_ms: float
    game_moves: int
    reallocated_users: int
    uncovered_users: int
    migration: MigrationPlan
    solve_time_s: float
    active_users: int = 0
    n_events: int = 0
    solution: "Solution | None" = None

    @property
    def migration_mb(self) -> float:
        return self.migration.bytes_moved


class DynamicSimulation:
    """Epoch-stepped IDDE over a streaming workload.

    ``mobility`` is optional: event-driven runs (:meth:`run_events`) bring
    their own movement; the legacy :meth:`run` entry point requires it.
    """

    def __init__(
        self,
        instance: IDDEInstance,
        mobility: MobilityModel | None = None,
        *,
        policy: str = "warm",
        churn: PoissonChurn | None = None,
        game: GameConfig | None = None,
        delivery: DeliveryConfig | None = None,
        sharding: "ShardConfig | None" = None,
        tracer: Tracer | None = None,
    ) -> None:
        if policy not in _POLICIES:
            raise ExperimentError(f"policy must be one of {_POLICIES}, got {policy!r}")
        if mobility is not None and mobility.n_users != instance.n_users:
            raise ExperimentError(
                f"mobility covers {mobility.n_users} users, instance has {instance.n_users}"
            )
        if churn is not None and churn.n_users != instance.n_users:
            raise ExperimentError(
                f"churn covers {churn.n_users} users, instance has {instance.n_users}"
            )
        self.instance = instance
        self.mobility = mobility
        self.policy = policy
        self.churn = churn
        self.game_cfg = game or GameConfig()
        self.delivery_cfg = delivery or DeliveryConfig()
        self.sharding = sharding
        self.tracer = ensure_tracer(tracer)

    # ------------------------------------------------------------------
    def run(
        self,
        epochs: int,
        dt: float,
        rng: np.random.Generator | int | None = None,
    ) -> list[EpochRecord]:
        """Run ``epochs`` epochs of ``dt`` seconds each over the mobility
        model (plus churn, if configured), adapted into the event engine.

        Epoch 0 is the initial solve at the starting positions (no
        movement, empty migration); subsequent epochs move users first.
        """
        if self.mobility is None:
            raise ExperimentError("run() needs a mobility model; use run_events()")
        if epochs < 1:
            raise ExperimentError(f"need at least one epoch, got {epochs}")
        return self.run_events(self._mobility_batches(epochs, dt), rng)

    def _mobility_batches(self, epochs: int, dt: float) -> Iterable[EpochBatch]:
        """Adapt mobility steps + churn-mask flips into event batches."""
        assert self.mobility is not None
        prev_active = self.churn.active.copy() if self.churn is not None else None
        for epoch in range(1, epochs):
            t = epoch * dt
            events: list[Event] = []
            positions = self.mobility.step(dt)
            events.extend(
                Move(t=t, user=j, x=float(x), y=float(y))
                for j, (x, y) in enumerate(positions)
            )
            if self.churn is not None and prev_active is not None:
                active = self.churn.step()
                for j in np.flatnonzero(active != prev_active):
                    cls = UserJoin if active[j] else UserLeave
                    events.append(cls(t=t, user=int(j)))
                prev_active = active.copy()
            yield EpochBatch(epoch - 1, (epoch - 1) * dt, t, tuple(events))

    # ------------------------------------------------------------------
    def run_events(
        self,
        batches: Iterable[EpochBatch],
        rng: np.random.Generator | int | None = None,
    ) -> list[EpochRecord]:
        """Run the epoch loop over an event-batch stream.

        Epoch 0 is the initial cold solve on the starting state; epoch
        ``i >= 1`` applies batch ``i - 1`` and re-solves under the policy.
        The batch iterable is consumed lazily — a generator of a million
        events runs in bounded memory (records accumulate, events do not).
        """
        from ..api import solve  # local import: repro.api ↔ dynamics layering
        from ..request import SolveRequest

        rng = ensure_rng(rng)
        tracer = self.tracer
        # One base request describes the run; each epoch stamps its own
        # runtime state (warm profile, churn mask, RNG) through
        # with_runtime — the same shape the IDDE-Serve session uses.
        base_request = SolveRequest(
            solver="idde-g",
            game_config=self.game_cfg,
            delivery_config=self.delivery_cfg,
            sharding=self.sharding,
        )
        records: list[EpochRecord] = []
        base = self.instance.scenario
        state = WorkloadState.from_scenario(
            base, self.churn.active if self.churn is not None else None
        )

        def _instance_at() -> IDDEInstance:
            return IDDEInstance(
                state.scenario(base), self.instance.topology, self.instance.radio
            )

        def _active() -> np.ndarray:
            # Always thread the mask: with a churn process it starts partial,
            # and a pure event stream can flip it via UserJoin/UserLeave; an
            # all-True mask is identical to "everyone plays".
            return state.active.copy()

        # Epoch 0: the cold build-up, through the façade like every other.
        instance = _instance_at()
        with tracer.span("timeline.epoch", epoch=0, policy=self.policy) as span:
            sol = solve(
                instance,
                base_request.with_runtime(active=_active(), rng=rng),
                tracer=tracer,
            )
            span.set(moves=sol.game.moves if sol.game else 0, r_avg=sol.r_avg)
        alloc, delivery = sol.allocation, sol.delivery
        empty = DeliveryProfile.empty(instance.n_servers, instance.n_data)
        records.append(
            EpochRecord(
                epoch=0,
                r_avg=sol.r_avg,
                l_avg_ms=sol.l_avg_ms,
                game_moves=sol.game.moves if sol.game else 0,
                reallocated_users=alloc.n_allocated,
                uncovered_users=int((~instance.scenario.covered_users).sum()),
                migration=plan_migration(instance, empty, delivery),
                solve_time_s=sol.wall_time_s,
                active_users=state.n_active,
                n_events=0,
                solution=sol,
            )
        )

        for batch in batches:
            epoch = batch.index + 1
            with tracer.span(
                "timeline.epoch", epoch=epoch, policy=self.policy
            ) as span:
                with tracer.span("workload.batch", events=batch.n_events) as bspan:
                    state.apply(batch)
                    bspan.set(active_users=state.n_active)
                instance = _instance_at()
                active = _active()

                if self.policy == "static":
                    t0 = time.perf_counter()
                    new_alloc, _detached = repair_allocation(instance, alloc, active)
                    solve_time = time.perf_counter() - t0
                    moves = 0
                    new_delivery = delivery
                    new_sol = None
                    ev = evaluate(instance, new_alloc, new_delivery)
                else:
                    new_sol = solve(
                        instance,
                        base_request.with_runtime(
                            warm_start=alloc if self.policy == "warm" else None,
                            active=active,
                            rng=rng,
                        ),
                        tracer=tracer,
                    )
                    new_alloc = new_sol.allocation
                    new_delivery = new_sol.delivery
                    moves = new_sol.game.moves if new_sol.game else 0
                    solve_time = new_sol.wall_time_s
                    ev = new_sol.evaluation

                migration = plan_migration(instance, delivery, new_delivery)
                changed = int(
                    (
                        (new_alloc.server != alloc.server)
                        | (new_alloc.channel != alloc.channel)
                    ).sum()
                )
                span.set(moves=moves, reallocated=changed, r_avg=ev.r_avg)
            records.append(
                EpochRecord(
                    epoch=epoch,
                    r_avg=ev.r_avg,
                    l_avg_ms=ev.l_avg_ms,
                    game_moves=moves,
                    reallocated_users=changed,
                    uncovered_users=int((~instance.scenario.covered_users).sum()),
                    migration=migration,
                    solve_time_s=solve_time,
                    active_users=state.n_active,
                    n_events=batch.n_events,
                    solution=new_sol,
                )
            )
            alloc, delivery = new_alloc, new_delivery

        return records

    # ------------------------------------------------------------------
    @staticmethod
    def summarize(records: list[EpochRecord]) -> dict[str, float]:
        """Aggregate a run into scalar metrics.

        Epoch 0 is excluded from the churn statistics (``mean_realloc``,
        ``mean_moves``, ``mean_migration_mb``, ``mean_solve_time_s``) — it
        is the cold build-up, where ``reallocated_users`` counts every
        placed user rather than epoch-over-epoch change.  A single-record
        run therefore has *no* steady-state sample at all and those
        metrics are NaN, not the cold solve in disguise.
        """
        if not records:
            return {}
        steady = records[1:]
        return {
            "mean_r_avg": float(np.mean([r.r_avg for r in records])),
            "mean_l_avg_ms": float(np.mean([r.l_avg_ms for r in records])),
            "mean_realloc": (
                float(np.mean([r.reallocated_users for r in steady]))
                if steady
                else float("nan")
            ),
            "mean_moves": (
                float(np.mean([r.game_moves for r in steady]))
                if steady
                else float("nan")
            ),
            "mean_migration_mb": (
                float(np.mean([r.migration_mb for r in steady]))
                if steady
                else float("nan")
            ),
            "mean_solve_time_s": (
                float(np.mean([r.solve_time_s for r in steady]))
                if steady
                else float("nan")
            ),
        }
