"""The dynamic IDDE epoch loop.

Per epoch: users move (a :class:`~repro.dynamics.mobility.MobilityModel`
step), the scenario is rebuilt at the new positions, allocations
invalidated by coverage loss are repaired, the strategy is re-solved under
the configured policy, and the delivery profile migrates.  Collected
per-epoch metrics quantify the cost of mobility: re-allocation churn,
game re-convergence effort, migration bytes, and both objectives.

Re-solve policies
-----------------
``"warm"``
    Re-run the IDDE-U game *warm-started* from the repaired previous
    allocation, then re-run the greedy delivery.  The expected production
    mode: churn-proportional effort.
``"cold"``
    Re-solve from scratch every epoch (the static algorithm replayed —
    the paper's implicit baseline for dynamic scenarios).
``"static"``
    Never re-solve: keep the initial strategy, only repairing allocations
    that became infeasible (uncovered users detach and fall back to the
    cloud).  Shows how fast a stale strategy decays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..config import DeliveryConfig, GameConfig
from ..core.delivery import greedy_delivery
from ..core.game import IddeUGame
from ..core.instance import IDDEInstance
from ..core.objectives import evaluate
from ..core.profiles import UNALLOCATED, AllocationProfile, DeliveryProfile
from ..errors import ExperimentError
from ..rng import ensure_rng
from ..types import Scenario
from .churn import PoissonChurn, apply_churn
from .migration import MigrationPlan, plan_migration
from .mobility import MobilityModel

__all__ = ["DynamicSimulation", "EpochRecord"]

_POLICIES = ("warm", "cold", "static")


@dataclass(frozen=True)
class EpochRecord:
    """Metrics for one epoch of the dynamic simulation.

    ``r_avg`` follows Eq. (5) — averaged over the full user universe —
    while ``active_users`` lets callers renormalise when churn leaves part
    of the universe inactive (inactive users contribute zero rate, like
    the paper's ``α_j = (0,0)`` state).
    """

    epoch: int
    r_avg: float
    l_avg_ms: float
    game_moves: int
    reallocated_users: int
    uncovered_users: int
    migration: MigrationPlan
    solve_time_s: float
    active_users: int = 0

    @property
    def migration_mb(self) -> float:
        return self.migration.bytes_moved


def _rebuild_scenario(scenario: Scenario, user_xy: np.ndarray) -> Scenario:
    """A copy of ``scenario`` with user positions replaced."""
    return Scenario(
        server_xy=scenario.server_xy,
        radius=scenario.radius,
        storage=scenario.storage,
        channels=scenario.channels,
        user_xy=user_xy,
        power=scenario.power,
        rmax=scenario.rmax,
        sizes=scenario.sizes,
        requests=scenario.requests,
    )


def _repair_allocation(
    instance: IDDEInstance,
    alloc: AllocationProfile,
    active: np.ndarray | None = None,
) -> tuple[AllocationProfile, int]:
    """Detach users whose assigned server no longer covers them, plus any
    user that churned out of the system.

    Returns the repaired profile and the number of detached users.
    """
    repaired = alloc.copy()
    detached = 0
    cover = instance.scenario.coverage
    for j in np.flatnonzero(repaired.allocated):
        gone = active is not None and not active[j]
        if gone or not cover[repaired.server[j], j]:
            repaired.server[j] = UNALLOCATED
            repaired.channel[j] = UNALLOCATED
            detached += 1
    return repaired, detached


class DynamicSimulation:
    """Epoch-stepped IDDE over a mobility process."""

    def __init__(
        self,
        instance: IDDEInstance,
        mobility: MobilityModel,
        *,
        policy: str = "warm",
        churn: PoissonChurn | None = None,
        game: GameConfig | None = None,
        delivery: DeliveryConfig | None = None,
    ) -> None:
        if policy not in _POLICIES:
            raise ExperimentError(f"policy must be one of {_POLICIES}, got {policy!r}")
        if mobility.n_users != instance.n_users:
            raise ExperimentError(
                f"mobility covers {mobility.n_users} users, instance has {instance.n_users}"
            )
        if churn is not None and churn.n_users != instance.n_users:
            raise ExperimentError(
                f"churn covers {churn.n_users} users, instance has {instance.n_users}"
            )
        self.instance = instance
        self.mobility = mobility
        self.policy = policy
        self.churn = churn
        self.game_cfg = game or GameConfig()
        self.delivery_cfg = delivery or DeliveryConfig()

    # ------------------------------------------------------------------
    def run(
        self,
        epochs: int,
        dt: float,
        rng: np.random.Generator | int | None = None,
    ) -> list[EpochRecord]:
        """Run ``epochs`` epochs of ``dt`` seconds each.

        Epoch 0 is the initial solve at the starting positions (no
        movement, empty migration); subsequent epochs move users first.
        """
        if epochs < 1:
            raise ExperimentError(f"need at least one epoch, got {epochs}")
        rng = ensure_rng(rng)
        records: list[EpochRecord] = []

        instance = self.instance
        active = self.churn.active.copy() if self.churn is not None else None
        if active is not None:
            scenario0 = apply_churn(instance.scenario, active)
            instance = IDDEInstance(
                scenario0, self.instance.topology, self.instance.radio
            )
        t0 = time.perf_counter()
        game_result = IddeUGame(instance, self.game_cfg).run(rng, active=active)
        alloc = game_result.profile
        delivery = greedy_delivery(instance, alloc, self.delivery_cfg).profile
        solve_time = time.perf_counter() - t0
        ev = evaluate(instance, alloc, delivery)
        empty = DeliveryProfile.empty(instance.n_servers, instance.n_data)
        records.append(
            EpochRecord(
                epoch=0,
                r_avg=ev.r_avg,
                l_avg_ms=ev.l_avg_ms,
                game_moves=game_result.moves,
                reallocated_users=alloc.n_allocated,
                uncovered_users=int((~instance.scenario.covered_users).sum()),
                migration=plan_migration(instance, empty, delivery),
                solve_time_s=solve_time,
                active_users=(
                    int(active.sum()) if active is not None else instance.n_users
                ),
            )
        )

        base_scenario = self.instance.scenario
        for epoch in range(1, epochs):
            positions = self.mobility.step(dt).copy()
            scenario = _rebuild_scenario(base_scenario, positions)
            if self.churn is not None:
                active = self.churn.step()
                scenario = apply_churn(scenario, active)
            instance = IDDEInstance(scenario, self.instance.topology, self.instance.radio)
            repaired, _detached = _repair_allocation(instance, alloc, active)

            t0 = time.perf_counter()
            if self.policy == "static":
                new_alloc = repaired
                moves = 0
                new_delivery = delivery
            else:
                initial = repaired if self.policy == "warm" else None
                result = IddeUGame(instance, self.game_cfg).run(
                    rng, initial=initial, active=active
                )
                new_alloc = result.profile
                moves = result.moves
                new_delivery = greedy_delivery(
                    instance, new_alloc, self.delivery_cfg
                ).profile
            solve_time = time.perf_counter() - t0

            migration = plan_migration(instance, delivery, new_delivery)
            changed = int(
                (
                    (new_alloc.server != alloc.server)
                    | (new_alloc.channel != alloc.channel)
                ).sum()
            )
            ev = evaluate(instance, new_alloc, new_delivery)
            records.append(
                EpochRecord(
                    epoch=epoch,
                    r_avg=ev.r_avg,
                    l_avg_ms=ev.l_avg_ms,
                    game_moves=moves,
                    reallocated_users=changed,
                    uncovered_users=int((~scenario.covered_users).sum()),
                    migration=migration,
                    solve_time_s=solve_time,
                    active_users=(
                        int(active.sum()) if active is not None else instance.n_users
                    ),
                )
            )
            alloc, delivery = new_alloc, new_delivery

        return records

    # ------------------------------------------------------------------
    @staticmethod
    def summarize(records: list[EpochRecord]) -> dict[str, float]:
        """Aggregate a run into scalar metrics (epoch 0 excluded from the
        churn statistics — it is the cold build-up)."""
        if not records:
            return {}
        steady = records[1:] or records
        return {
            "mean_r_avg": float(np.mean([r.r_avg for r in records])),
            "mean_l_avg_ms": float(np.mean([r.l_avg_ms for r in records])),
            "mean_realloc": float(np.mean([r.reallocated_users for r in steady])),
            "mean_moves": float(np.mean([r.game_moves for r in steady])),
            "mean_migration_mb": float(np.mean([r.migration_mb for r in steady])),
            "mean_solve_time_s": float(np.mean([r.solve_time_s for r in steady])),
        }
