"""User churn: arrivals and departures over epochs.

Beyond movement, real edge populations *churn* — users open the app,
close it, leave the area.  :class:`PoissonChurn` maintains a boolean
active mask over a fixed user universe: each epoch, every active user
departs with probability ``p_depart`` and every inactive user (re)arrives
with probability ``p_arrive``.  The stationary active fraction is
``p_arrive / (p_arrive + p_depart)``.

:func:`apply_churn` projects a scenario onto an active mask: inactive
users keep their slots (array shapes never change, so profiles stay
aligned) but lose their requests — and the timeline unallocates them —
so they contribute zero rate and no demand, exactly like the paper's
``α_j = (0,0)`` users.
"""

from __future__ import annotations

import numpy as np

from ..errors import ScenarioError
from ..rng import ensure_rng
from ..types import Scenario

__all__ = ["PoissonChurn", "apply_churn"]


class PoissonChurn:
    """Memoryless per-epoch arrival/departure process."""

    def __init__(
        self,
        n_users: int,
        rng: np.random.Generator | int | None = None,
        *,
        p_depart: float = 0.05,
        p_arrive: float = 0.20,
        initial_active: float = 1.0,
    ) -> None:
        if n_users < 0:
            raise ScenarioError(f"negative user count {n_users}")
        for name, p in (("p_depart", p_depart), ("p_arrive", p_arrive)):
            if not (0.0 <= p <= 1.0):
                raise ScenarioError(f"{name} must be in [0, 1], got {p}")
        if not (0.0 <= initial_active <= 1.0):
            raise ScenarioError(f"initial_active must be in [0, 1], got {initial_active}")
        self.rng = ensure_rng(rng)
        self.p_depart = p_depart
        self.p_arrive = p_arrive
        self.active = self.rng.random(n_users) < initial_active

    @property
    def n_users(self) -> int:
        return self.active.shape[0]

    @property
    def n_active(self) -> int:
        return int(self.active.sum())

    def step(self) -> np.ndarray:
        """Advance one epoch; returns the new active mask (a copy)."""
        u = self.rng.random(self.n_users)
        departs = self.active & (u < self.p_depart)
        arrives = ~self.active & (u < self.p_arrive)
        self.active = (self.active & ~departs) | arrives
        return self.active.copy()

    def stationary_fraction(self) -> float:
        """The long-run expected active fraction."""
        total = self.p_arrive + self.p_depart
        if total == 0.0:
            return float(self.active.mean()) if self.n_users else 1.0
        return self.p_arrive / total


def apply_churn(scenario: Scenario, active: np.ndarray) -> Scenario:
    """A scenario copy whose inactive users request nothing.

    Array shapes are preserved (user indices stay stable across epochs);
    only the request matrix changes — inactive rows are zeroed.
    """
    active = np.asarray(active, dtype=bool)
    if active.shape != (scenario.n_users,):
        raise ScenarioError(
            f"active mask shape {active.shape} mismatches {scenario.n_users} users"
        )
    requests = scenario.requests.copy()
    requests[~active] = False
    return Scenario(
        server_xy=scenario.server_xy,
        radius=scenario.radius,
        storage=scenario.storage,
        channels=scenario.channels,
        user_xy=scenario.user_xy,
        power=scenario.power,
        rmax=scenario.rmax,
        sizes=scenario.sizes,
        requests=requests,
    )
