"""Dynamic IDDE: user mobility and data migration over time.

The paper closes with "in the future work, we will investigate the
dynamics of user movements and data migrations in IDDE scenarios" — this
subpackage builds that extension on the static substrate:

* :mod:`~repro.dynamics.mobility` — user movement models (random
  waypoint, confined random walk) stepping user positions per epoch;
* :mod:`~repro.dynamics.churn` — arrival/departure processes toggling a
  per-epoch active-user mask (inactive users request nothing, allocate
  nowhere);
* :mod:`~repro.dynamics.migration` — plans and costs for moving the
  delivery profile between epochs (which replicas to add/drop, where the
  bytes come from, how long the migration occupies the edge links);
* :mod:`~repro.dynamics.timeline` — the epoch loop: move users, repair
  invalidated allocations, re-run IDDE-G under one of three re-solve
  policies (``warm`` / ``cold`` / ``static``), migrate replicas, and
  record per-epoch metrics.
"""

from .churn import PoissonChurn, apply_churn
from .migration import MigrationPlan, plan_migration
from .mobility import ConfinedRandomWalk, MobilityModel, RandomWaypoint
from .timeline import DynamicSimulation, EpochRecord

__all__ = [
    "MobilityModel",
    "RandomWaypoint",
    "ConfinedRandomWalk",
    "PoissonChurn",
    "apply_churn",
    "MigrationPlan",
    "plan_migration",
    "DynamicSimulation",
    "EpochRecord",
]
