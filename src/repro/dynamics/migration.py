"""Data migration between consecutive delivery profiles.

When users move, the latency-optimal replica placement shifts; migrating
from profile ``σ_old`` to ``σ_new`` costs real bytes over the edge links.
:func:`plan_migration` computes, for every replica added by ``σ_new``, the
cheapest source under the *old* placement (an old replica or the cloud —
new replicas cannot seed each other before they exist), and aggregates:

* ``added`` / ``removed`` — the placement delta as ``(server, item)`` lists;
* ``bytes_moved`` — total MB shipped into the system;
* ``transfer_time_s`` — per-added-replica transfer latencies, and their
  sum (sequential migration) and max (fully parallel migration) — the
  two ends of the scheduling spectrum;
* ``cloud_seeded`` — how many replicas had to come from the cloud.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.instance import IDDEInstance
from ..core.profiles import DeliveryProfile
from ..errors import DeliveryError

__all__ = ["MigrationPlan", "plan_migration"]


@dataclass(frozen=True)
class MigrationPlan:
    """The computed migration between two delivery profiles."""

    added: tuple[tuple[int, int], ...]
    removed: tuple[tuple[int, int], ...]
    sources: tuple[int, ...]  # per added replica; -1 encodes the cloud
    transfer_times_s: tuple[float, ...]
    bytes_moved: float
    cloud_seeded: int

    @property
    def sequential_time_s(self) -> float:
        """Total time if replicas migrate one after another."""
        return float(sum(self.transfer_times_s))

    @property
    def parallel_time_s(self) -> float:
        """Makespan if every transfer runs concurrently."""
        return float(max(self.transfer_times_s, default=0.0))

    @property
    def n_added(self) -> int:
        return len(self.added)

    @property
    def n_removed(self) -> int:
        return len(self.removed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MigrationPlan(+{self.n_added}/-{self.n_removed}, "
            f"{self.bytes_moved:.0f} MB, seq={self.sequential_time_s:.3f}s)"
        )


def plan_migration(
    instance: IDDEInstance,
    old: DeliveryProfile,
    new: DeliveryProfile,
) -> MigrationPlan:
    """Plan the replica movements taking ``old`` to ``new``.

    Sources are chosen per added replica as the cheapest *old* holder of
    the item (falling back to the cloud when the item was not in the
    system); dropped replicas are free.  The new profile must be feasible
    for the instance.
    """
    shape = (instance.n_servers, instance.n_data)
    if old.placed.shape != shape or new.placed.shape != shape:
        raise DeliveryError(
            f"profiles must both be shaped {shape}; got {old.placed.shape} "
            f"and {new.placed.shape}"
        )
    new.validate(instance.scenario)

    sizes = instance.scenario.sizes
    pc = instance.latency_model.path_cost
    cloud = instance.latency_model.cloud_cost

    added_mask = new.placed & ~old.placed
    removed_mask = old.placed & ~new.placed
    added = [(int(i), int(k)) for i, k in np.argwhere(added_mask)]
    removed = [(int(i), int(k)) for i, k in np.argwhere(removed_mask)]

    sources: list[int] = []
    times: list[float] = []
    bytes_moved = 0.0
    cloud_seeded = 0
    for i, k in added:
        holders = old.servers_holding(k)
        if len(holders):
            costs = pc[holders, i]
            best = int(np.argmin(costs))
            per_mb = float(costs[best])
            src = int(holders[best])
            if cloud < per_mb:  # the cloud may still be the cheapest seed
                per_mb = cloud
                src = -1
        else:
            per_mb = cloud
            src = -1
        if src == -1:
            cloud_seeded += 1
        sources.append(src)
        times.append(float(sizes[k]) * per_mb)
        bytes_moved += float(sizes[k])

    return MigrationPlan(
        added=tuple(added),
        removed=tuple(removed),
        sources=tuple(sources),
        transfer_times_s=tuple(times),
        bytes_moved=bytes_moved,
        cloud_seeded=cloud_seeded,
    )
