"""Deterministic random-number plumbing.

Every stochastic component in this package draws from a
:class:`numpy.random.Generator`.  Experiments need *independent* streams per
(trial, solver, purpose) that are nevertheless fully reproducible from a
single root seed — including when trials are farmed out to worker processes.
``numpy``'s :class:`~numpy.random.SeedSequence` spawning gives exactly that:
child sequences are statistically independent and derived deterministically
from the parent entropy plus a spawn key.

The helpers here wrap that machinery with a string-keyed interface so call
sites read like ``spawn_rng(seed, "sweep", set_name, point, rep)``.
"""

from __future__ import annotations

import zlib
from typing import Iterable

import numpy as np

__all__ = ["ensure_rng", "spawn_rng", "key_to_int", "spawn_seedsequence"]


def key_to_int(key: object) -> int:
    """Map an arbitrary hashable-ish key to a stable non-negative integer.

    Non-negative integers map to themselves under the documented
    ``& 0xFFFFFFFF`` mask.  Negative integers keep the same mask but carry
    a tag bit above it, so ``-1`` can never collide with ``2**32 - 1``
    (:class:`numpy.random.SeedSequence` spawn keys accept integers wider
    than 32 bits).  Booleans — including ``numpy.bool_`` — are normalised
    to ``repr(bool(key))`` before hashing so the mapping is stable across
    numpy versions and distinct from the integers 0/1.  Any other object
    is rendered with ``repr`` and CRC32-hashed; ``repr`` is stable across
    processes for the primitive types used as keys in this package (str,
    int, float, tuples thereof), unlike ``hash()`` which is salted for str.
    """
    if isinstance(key, (bool, np.bool_)):
        return zlib.crc32(repr(bool(key)).encode("utf-8"))
    if isinstance(key, (int, np.integer)):
        masked = int(key) & 0xFFFFFFFF
        return masked if int(key) >= 0 else masked | (1 << 32)
    return zlib.crc32(repr(key).encode("utf-8"))


def spawn_seedsequence(seed: int, *keys: object) -> np.random.SeedSequence:
    """Build a :class:`~numpy.random.SeedSequence` from a root seed and keys.

    The same ``(seed, *keys)`` always yields the same sequence; different
    key tuples yield independent streams.
    """
    return np.random.SeedSequence(entropy=int(seed), spawn_key=tuple(key_to_int(k) for k in keys))


def spawn_rng(seed: int, *keys: object) -> np.random.Generator:
    """Create a deterministic, independent generator for ``(seed, *keys)``.

    Examples
    --------
    >>> a = spawn_rng(42, "topology", 3)
    >>> b = spawn_rng(42, "topology", 3)
    >>> float(a.random()) == float(b.random())
    True
    >>> c = spawn_rng(42, "topology", 4)
    >>> float(spawn_rng(42, "topology", 3).random()) != float(c.random())
    True
    """
    return np.random.default_rng(spawn_seedsequence(seed, *keys))


def ensure_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce ``rng`` to a :class:`numpy.random.Generator`.

    ``None`` produces a fresh OS-entropy generator; an ``int`` is treated as
    a seed; a generator passes through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    if isinstance(rng, np.random.Generator):
        return rng
    raise TypeError(f"expected Generator, int seed, or None; got {type(rng).__name__}")


def split_rngs(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Uses the generator's bit-generator seed sequence when available so the
    split is deterministic given the parent's construction.
    """
    if n < 0:
        raise ValueError(f"cannot split into {n} generators")
    seed_seq = rng.bit_generator.seed_seq  # type: ignore[attr-defined]
    return [np.random.default_rng(child) for child in seed_seq.spawn(n)]


def seeds_for(seed: int, labels: Iterable[object]) -> dict[object, np.random.Generator]:
    """Build a dictionary of independent generators keyed by ``labels``."""
    return {label: spawn_rng(seed, label) for label in labels}
