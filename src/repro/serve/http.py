"""A minimal HTTP/1.1 layer over ``asyncio`` streams — stdlib only.

IDDE-Serve deliberately avoids a web framework: the daemon needs six
endpoints, JSON bodies, and deterministic error mapping, so this module
implements exactly that — a strict request parser with hard size limits,
a response renderer, and the :class:`~repro.errors.ReproError` → HTTP
status table every handler funnels failures through.

Scope (and non-goals) are explicit:

* One request per connection (``Connection: close``).  The daemon's
  clients are replay tools and health probes, not browsers; keep-alive
  buys nothing and connection reuse bugs cost plenty.
* No chunked transfer encoding, no multipart, no compression.  Bodies are
  ``Content-Length``-framed JSON, capped at :data:`MAX_BODY_BYTES` —
  an oversized or unframed body is a :class:`~repro.errors.ProtocolError`
  (400), never an OOM.
* Responses always carry ``Content-Length`` and close the socket, so a
  client can never hang on a response boundary.

Error wire format (every non-2xx body)::

    {"error": {"type": "SolverLookupError", "status": 400,
               "message": "unknown solver 'ide-g'; did you mean 'idde-g'?"}}

``type`` is the :class:`~repro.errors.ReproError` subclass name, so a
client can discriminate failures exactly like an in-process caller's
``except`` clause would.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, urlsplit

from ..errors import (
    ConfigurationError,
    DatasetError,
    ProtocolError,
    QueueFullError,
    ReproError,
    RequestTimeoutError,
    ScenarioError,
    SolverError,
    SolverLookupError,
    TopologyError,
)

__all__ = [
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "STATUS_BY_ERROR",
    "HttpRequest",
    "HttpResponse",
    "error_response",
    "json_response",
    "read_request",
    "status_for_error",
]

#: Hard cap on a request body — a 1k-event delta batch is ~100 KiB, so
#: 8 MiB leaves two orders of magnitude of headroom without risking memory.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Hard cap on the request line + headers block.
MAX_HEADER_BYTES = 16 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Ordered (class, status) mapping — first match wins, so subclasses must
#: precede their bases.  Client-side faults (malformed requests, unknown
#: solvers, bad event universes) are 4xx; solver-side faults are 5xx.
STATUS_BY_ERROR: tuple[tuple[type[ReproError], int], ...] = (
    (QueueFullError, 429),
    (RequestTimeoutError, 504),
    (ProtocolError, 400),
    (SolverLookupError, 400),
    (ConfigurationError, 400),
    (DatasetError, 400),
    (ScenarioError, 400),
    (TopologyError, 400),
    (SolverError, 500),
    (ReproError, 500),
)


def status_for_error(exc: Exception) -> int:
    """The HTTP status an exception maps to.

    :class:`~repro.errors.ReproError` subclasses follow the table above;
    anything else is an internal fault and maps to 500.
    """
    for cls, status in STATUS_BY_ERROR:
        if isinstance(exc, cls):
            return status
    return 500


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request: method, split path, query and decoded body."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body decoded as JSON; empty bodies decode to ``None``.

        Raises :class:`~repro.errors.ProtocolError` (→ 400) on anything
        that is not UTF-8 JSON.
        """
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from exc


@dataclass(frozen=True)
class HttpResponse:
    """One response: status + JSON-ready payload (rendered lazily).

    ``headers`` carries extra response headers as (name, value) pairs —
    e.g. the mandatory ``Allow`` on a 405.
    """

    status: int
    payload: Any
    headers: tuple[tuple[str, str], ...] = ()

    def render(self) -> bytes:
        body = json.dumps(self.payload, sort_keys=True).encode("utf-8") + b"\n"
        reason = _REASONS.get(self.status, "Unknown")
        extra = "".join(f"{name}: {value}\r\n" for name, value in self.headers)
        head = (
            f"HTTP/1.1 {self.status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n"
            f"\r\n"
        )
        return head.encode("ascii") + body


def json_response(payload: Any, *, status: int = 200) -> HttpResponse:
    """A 200 (or chosen status) JSON response."""
    return HttpResponse(status=status, payload=payload)


def error_response(exc: Exception) -> HttpResponse:
    """The structured error body for an exception.

    ``KeyError``-derived exceptions (:class:`SolverLookupError`) repr-quote
    their message; unwrap ``args`` so the wire message reads clean.
    Non-:class:`~repro.errors.ReproError` exceptions render as 500s with
    their class name as ``type`` — the daemon's last-resort mapping.
    """
    status = status_for_error(exc)
    message = str(exc.args[0]) if exc.args else str(exc)
    return HttpResponse(
        status=status,
        payload={
            "error": {
                "type": type(exc).__name__,
                "status": status,
                "message": message,
            }
        },
    )


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one HTTP/1.1 request off a stream.

    Returns ``None`` when the peer closed the connection before sending a
    request line (a clean no-op).  Every malformed or oversized input
    raises :class:`~repro.errors.ProtocolError`, which the daemon renders
    as a structured 400 — the parser never lets a bad peer take the
    process down.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError(
            f"request head exceeds {MAX_HEADER_BYTES} bytes"
        ) from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ProtocolError(f"request head exceeds {MAX_HEADER_BYTES} bytes")

    try:
        text = head.decode("ascii")
    except UnicodeDecodeError as exc:
        raise ProtocolError("request head is not ASCII") from exc
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    method, target, _version = parts

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    query = dict(parse_qsl(split.query))

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as exc:
            raise ProtocolError(
                f"bad Content-Length {length_header!r}"
            ) from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError(
                f"Content-Length {length} outside [0, {MAX_BODY_BYTES}]"
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError("connection closed mid-body") from exc
    elif headers.get("transfer-encoding"):
        raise ProtocolError(
            "chunked transfer encoding is not supported; frame the body "
            "with Content-Length"
        )

    return HttpRequest(
        method=method.upper(),
        path=split.path or "/",
        query=query,
        headers=headers,
        body=body,
    )
