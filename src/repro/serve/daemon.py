"""The IDDE-Serve daemon: a long-lived async solver service.

One :class:`ServeDaemon` wraps one :class:`~repro.serve.session.SolverSession`
behind a schema-versioned HTTP/JSON API (``idde serve`` boots it).  The
concurrency model is deliberately simple and fully deterministic:

* **One serialized solver loop.**  Mutating requests (``/v1/solve``,
  ``/v1/events``) queue on an :class:`asyncio.Lock` and execute one at a
  time in a worker thread (:func:`asyncio.to_thread`), so the solver's
  warm-start chain — each re-solve starting from the previous certified
  solution — is a strict sequence even under concurrent clients.
* **Reads never queue.**  ``/v1/health``, ``/v1/metrics``, ``/v1/solution``
  and ``/v1/trace`` run on the event loop against locked snapshots, so a
  health probe answers in microseconds while a solve is mid-flight.
* **Bounded admission.**  At most ``queue_limit`` mutating requests may be
  queued or running; request ``queue_limit + 1`` is shed with a structured
  429 (:class:`~repro.errors.QueueFullError`) instead of building an
  unbounded backlog.
* **Per-request time budget.**  A mutating request that exceeds
  ``request_timeout_s`` is answered with a structured 504
  (:class:`~repro.errors.RequestTimeoutError`).  The solver thread itself
  cannot be interrupted mid-kernel; it finishes in the background and the
  session state stays consistent — only the *response* is abandoned.
* **Graceful drain.**  ``SIGTERM``/``SIGINT`` stop the listener, let every
  admitted request finish, then exit 0.  New connections during the drain
  are refused at accept; requests already queued still get answers.

Endpoints (all JSON; see docs/SERVING.md for the wire reference):

=======  =============  ====================================================
Method   Path           Semantics
=======  =============  ====================================================
POST     /v1/solve      Adopt an ``idde-request/1`` document (empty body =
                        re-run the current base request) and solve on the
                        current workload state; returns ``idde-solution/2``.
POST     /v1/events     Fold ``idde-events/1`` delta events into the
                        workload state and warm re-solve from the resident
                        solution; returns the new certified solution.
GET      /v1/solution   The resident solution document (409 when cold).
GET      /v1/health     Liveness + session counters; never queues.
GET      /v1/metrics    Tracer counters/gauges/histograms snapshot.
GET      /v1/trace      The full ``idde-trace/1`` record stream, one JSON
                        object per line (NDJSON).
=======  =============  ====================================================
"""

from __future__ import annotations

import asyncio
import json
import signal
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import (
    ConfigurationError,
    ProtocolError,
    QueueFullError,
    ReproError,
    RequestTimeoutError,
)
from ..obs.document import SCHEMA as TRACE_SCHEMA
from ..obs.document import trace_records
from ..request import SolveRequest
from ..workload import parse_event
from .http import (
    HttpRequest,
    HttpResponse,
    error_response,
    json_response,
    read_request,
)
from .session import SolverSession

__all__ = ["ServeConfig", "ServeDaemon"]

#: API version prefix every endpoint lives under.
API_PREFIX = "/v1"

#: Allowed methods per endpoint path — the routing table's dual, used to
#: answer known-path/wrong-method requests with 405 + ``Allow``.
_ALLOWED_METHODS: dict[str, tuple[str, ...]] = {
    f"{API_PREFIX}/solve": ("POST",),
    f"{API_PREFIX}/events": ("POST",),
    f"{API_PREFIX}/solution": ("GET",),
    f"{API_PREFIX}/health": ("GET",),
    f"{API_PREFIX}/metrics": ("GET",),
    f"{API_PREFIX}/trace": ("GET",),
}


@dataclass(frozen=True)
class ServeConfig:
    """Daemon knobs (the ``idde serve`` flags map onto these 1:1)."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Per-request wall-clock budget for mutating requests (seconds).
    request_timeout_s: float = 300.0
    #: Max mutating requests admitted (queued + running) at once.
    queue_limit: int = 8

    def __post_init__(self) -> None:
        if self.request_timeout_s <= 0:
            raise ConfigurationError(
                f"request_timeout_s must be > 0, got {self.request_timeout_s}"
            )
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )


class ServeDaemon:
    """The asyncio server around one :class:`SolverSession`."""

    def __init__(
        self,
        session: SolverSession,
        config: ServeConfig | None = None,
    ) -> None:
        self.session = session
        self.config = config or ServeConfig()
        self.tracer = session.tracer
        self._solver_lock = asyncio.Lock()
        self._admitted = 0
        self._draining = asyncio.Event()
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._jobs: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("daemon is not started")
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._on_connection, host=self.config.host, port=self.config.port
        )

    def request_shutdown(self) -> None:
        """Begin a graceful drain (idempotent; signal handlers call this)."""
        self._draining.set()

    async def run(self, *, install_signal_handlers: bool = True) -> int:
        """Serve until a drain is requested, then drain and return 0.

        The ``idde serve`` command awaits this; tests drive the same path
        by calling :meth:`request_shutdown` directly (signal handlers are
        process-global, so they are optional here).
        """
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        installed: list[signal.Signals] = []
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.request_shutdown)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # platform without signal support; rely on explicit shutdown
        try:
            await self._draining.wait()
            # Drain: stop accepting, then let admitted work finish.
            assert self._server is not None
            self._server.close()
            await self._server.wait_closed()
            if self._connections:
                await asyncio.gather(*self._connections, return_exceptions=True)
            if self._jobs:
                # Jobs abandoned by a timeout still run; a clean drain
                # lets them finish so session state lands consistent.
                await asyncio.gather(*self._jobs, return_exceptions=True)
            return 0
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            await self._serve_one(reader, writer)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - peer reset
                pass

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await read_request(reader)
        except ProtocolError as exc:
            await self._write(writer, error_response(exc).render())
            return
        if request is None:
            return
        self.tracer.count("serve.requests")
        if request.method == "GET" and request.path == f"{API_PREFIX}/trace":
            await self._stream_trace(writer)
            return
        try:
            response = await self._dispatch(request)
        except Exception as exc:
            # ReproError subclasses follow the status table; anything
            # else is an internal fault rendered as a structured 500 —
            # a handler bug must never close the connection answerless.
            self.tracer.count("serve.errors")
            response = error_response(exc)
        await self._write(writer, response.render())

    @staticmethod
    async def _write(writer: asyncio.StreamWriter, data: bytes) -> None:
        try:
            writer.write(data)
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - peer reset
            pass

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(self, request: HttpRequest) -> HttpResponse:
        route = (request.method, request.path)
        if route == ("POST", f"{API_PREFIX}/solve"):
            return await self._post_solve(request)
        if route == ("POST", f"{API_PREFIX}/events"):
            return await self._post_events(request)
        if route == ("GET", f"{API_PREFIX}/solution"):
            return self._get_solution()
        if route == ("GET", f"{API_PREFIX}/health"):
            return self._get_health()
        if route == ("GET", f"{API_PREFIX}/metrics"):
            return self._get_metrics()
        allowed = _ALLOWED_METHODS.get(request.path)
        if allowed is not None:
            self.tracer.count("serve.errors")
            allow = ", ".join(allowed)
            return HttpResponse(
                status=405,
                payload={
                    "error": {
                        "type": "ProtocolError",
                        "status": 405,
                        "message": (
                            f"method {request.method} not allowed on "
                            f"{request.path}; allowed: {allow}"
                        ),
                    }
                },
                headers=(("Allow", allow),),
            )
        raise ProtocolError(f"unknown endpoint {request.path!r}")

    # ------------------------------------------------------------------
    # mutating endpoints: serialized, bounded, time-budgeted
    # ------------------------------------------------------------------
    async def _run_solver(self, fn: Callable[[], dict[str, Any]]) -> dict[str, Any]:
        """Admit, serialize, and time-budget one mutating job.

        Admission control counts queued *and* running jobs against
        ``queue_limit``; past it the request is shed with 429 before it
        can touch the solver lock.  The time budget covers queue wait plus
        execution; on expiry the response is abandoned with 504 while the
        already-running solver thread completes in the background (session
        state remains consistent — only this response is lost).
        """
        if self._draining.is_set():
            raise QueueFullError("daemon is draining; no new work admitted")
        if self._admitted >= self.config.queue_limit:
            self.tracer.count("serve.shed")
            raise QueueFullError(
                f"request queue is full ({self.config.queue_limit} admitted); "
                "retry with backoff"
            )
        self._admitted += 1

        async def _job() -> dict[str, Any]:
            async with self._solver_lock:
                return await asyncio.to_thread(fn)

        job_task = asyncio.ensure_future(_job())
        self._jobs.add(job_task)
        job_task.add_done_callback(self._on_job_done)
        try:
            return await asyncio.wait_for(
                asyncio.shield(job_task), timeout=self.config.request_timeout_s
            )
        except asyncio.TimeoutError:
            self.tracer.count("serve.timeouts")
            raise RequestTimeoutError(
                f"request exceeded the {self.config.request_timeout_s:.0f}s "
                "budget; the solve continues in the background — poll "
                "GET /v1/solution"
            ) from None

    def _on_job_done(self, task: asyncio.Task) -> None:
        """Release the admission slot and reap abandoned jobs' exceptions."""
        self._admitted -= 1
        self._jobs.discard(task)
        if not task.cancelled():
            task.exception()

    async def _post_solve(self, request: HttpRequest) -> HttpResponse:
        body = request.json()
        if body is None:
            solve_request: SolveRequest | None = None
        else:
            solve_request = SolveRequest.from_dict(body)

        def job() -> dict[str, Any]:
            self.session.solve(solve_request)
            return self.session.solution_document()

        return json_response(await self._run_solver(job))

    async def _post_events(self, request: HttpRequest) -> HttpResponse:
        body = request.json()
        if isinstance(body, dict):
            docs = body.get("events")
        else:
            docs = body
        if not isinstance(docs, list) or not docs:
            raise ProtocolError(
                'body must be {"events": [...]} (or a bare non-empty list) '
                "of idde-events/1 objects"
            )
        events = [
            parse_event(doc, where=f"events[{i}]") for i, doc in enumerate(docs)
        ]

        def job() -> dict[str, Any]:
            self.session.apply_events(events)
            return self.session.solution_document()

        return json_response(await self._run_solver(job))

    # ------------------------------------------------------------------
    # read endpoints: lock-free snapshots on the event loop
    # ------------------------------------------------------------------
    def _get_health(self) -> HttpResponse:
        return json_response(
            {
                "status": "draining" if self._draining.is_set() else "ok",
                "admitted": self._admitted,
                "queue_limit": self.config.queue_limit,
                "session": self.session.stats(),
            }
        )

    def _get_metrics(self) -> HttpResponse:
        metrics = getattr(self.tracer, "metrics_snapshot", None)
        if metrics is None:
            raise ProtocolError(
                "metrics require a recording tracer; session runs the no-op tracer"
            )
        return json_response(metrics())

    def _get_solution(self) -> HttpResponse:
        try:
            return json_response(self.session.solution_document())
        except ReproError as exc:
            response = error_response(exc)
            # "Nothing solved yet" is a state conflict, not a solver fault.
            if "no resident solution" in str(exc):
                return HttpResponse(status=409, payload=response.payload)
            raise

    async def _stream_trace(self, writer: asyncio.StreamWriter) -> None:
        """Stream the ``idde-trace/1`` records as NDJSON, one per line.

        No ``Content-Length`` — the connection close delimits the stream
        (the one endpoint that does this; traces can be large and are
        snapshotted record-by-record into lines, never one giant body).
        """
        records = trace_records(
            self.tracer,
            meta={"source": "idde-serve", "schema": TRACE_SCHEMA},
        )
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        try:
            writer.write(head.encode("ascii"))
            for record in records:
                writer.write(json.dumps(record, sort_keys=True).encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - peer reset
            pass
