"""The stateful heart of IDDE-Serve: one long-lived :class:`SolverSession`.

A session owns everything a sequence of related solves can reuse — the
base :class:`~repro.core.instance.IDDEInstance` (topology and SINR engine
caches stay resident across requests), the mutable
:class:`~repro.workload.WorkloadState` that ``idde-events/1`` deltas fold
into, the latest certified :class:`~repro.api.Solution`, and one
:class:`~repro.obs.tracer.RecordingTracer` whose snapshots back the
daemon's ``/v1/metrics`` and ``/v1/trace`` endpoints.

The lifecycle mirrors the streaming engine (PR 8), lifted behind an API:

* :meth:`solve` — run the session's base :class:`~repro.request.SolveRequest`
  on the *current* workload state.  A request whose ``warm_start`` is the
  wire sentinel ``True`` re-enters the game from the session's resident
  solution (this is the only place the sentinel resolves; a direct
  :func:`repro.api.solve` on it raises).
* :meth:`apply_events` — fold a delta batch into the workload state and
  warm re-solve from the resident solution, exactly the
  ``warm_start=prev`` + :func:`~repro.core.repair.repair_allocation` path.

Every IDDE-G response is **independently certified**: the session rebuilds
an :class:`~repro.core.game.IddeUGame` on the post-delta instance and
re-checks ε-Nash at the tolerance the solve itself claims
(``sol.game.effective_epsilon``) — the daemon never serves an allocation
whose certificate it did not verify.  A failed certificate raises
:class:`~repro.errors.SolverError` and the resident solution is *not*
replaced.

Thread-safety: two locks with distinct jobs.  Mutators (:meth:`solve`,
:meth:`apply_events`) serialize end-to-end on a private mutate lock, so
the warm-start chain is a strict sequence even without the daemon's own
serialization.  A second, *short-held* state lock guards only input
snapshots, commits, and the read-side helpers (:meth:`stats`,
:meth:`solution_document`) — the solver kernel itself runs outside both
read-visible critical sections, so a health probe from any thread
answers in microseconds while a solve is minutes deep.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

import numpy as np

from ..api import Solution, execute
from ..baselines import resolve_solver_name
from ..config import GameConfig
from ..core.game import IddeUGame
from ..core.instance import IDDEInstance
from ..errors import ConfigurationError, SolverError
from ..obs.tracer import RecordingTracer, Tracer
from ..request import SolveRequest
from ..rng import spawn_rng
from ..workload import Event, WorkloadState

__all__ = ["SolverSession"]


class SolverSession:
    """One resident instance + workload state + latest certified solution.

    Parameters
    ----------
    instance:
        The base problem.  Entities other than user positions / activity /
        requests are fixed for the session's lifetime; deltas evolve the
        rest through :class:`~repro.workload.WorkloadState`.
    request:
        The base :class:`~repro.request.SolveRequest` (default: a cold
        ``idde-g`` solve).  Its ``rng`` integer seed (or 0) roots the
        session's deterministic per-epoch RNG streams
        (``spawn_rng(seed, "serve", epoch)``); its ``active`` mask seeds
        the initial workload state.
    tracer:
        Recording tracer shared with the daemon's observability endpoints;
        a private one is created when omitted.
    resident:
        Optional prior :class:`~repro.api.Solution` to install as the
        resident solution before any request arrives — the warm-boot path
        (a restarted daemon reloading the solution it last served warms
        its first re-solve instead of cold-starting).
    """

    def __init__(
        self,
        instance: IDDEInstance,
        request: SolveRequest | None = None,
        *,
        tracer: RecordingTracer | None = None,
        resident: Solution | None = None,
    ) -> None:
        #: Serializes mutators (solve/apply_events) end-to-end.
        self._mutate_lock = threading.Lock()
        #: Short-held state lock: snapshots, commits, and read helpers
        #: only — never held across a solver kernel.
        self._lock = threading.RLock()
        self.instance = instance
        self.tracer: Tracer = tracer if tracer is not None else RecordingTracer()
        self.state = WorkloadState.from_scenario(
            instance.scenario,
            active=None if request is None else request.active,
        )
        self.request = self._adopt(request or SolveRequest())
        self.solution: Solution | None = resident
        #: Epoch counter: -1 before the first solve; each solve/re-solve
        #: advances it and keys that solve's deterministic RNG stream.
        self.epoch = -1
        self.events_applied = 0
        self.solves = 0
        self.warm_solves = 0
        self.certified: bool | None = None

    # ------------------------------------------------------------------
    # request adoption
    # ------------------------------------------------------------------
    def _adopt(self, request: SolveRequest) -> SolveRequest:
        """Normalise an incoming request into the session's base request.

        The session owns runtime state, so the stored base request keeps
        only the run *description*: ``active`` moves into the workload
        state (it seeded construction; later it is server state, not
        request state) and ``rng`` must be a replayable integer seed.
        """
        if request.rng is not None and not (
            isinstance(request.rng, (int, np.integer))
            and not isinstance(request.rng, bool)
        ):
            raise ConfigurationError(
                "a session request's rng must be an integer seed (or None); "
                "live generators are not replayable across re-solves"
            )
        if not isinstance(request.warm_start, (bool, type(None))):
            raise ConfigurationError(
                "a session request's warm_start must be the boolean wire "
                "sentinel; the session owns the resident prior solution"
            )
        return request.with_runtime(
            warm_start=request.warm_start, active=None, rng=request.rng
        )

    @property
    def seed(self) -> int:
        """Root seed for the session's per-epoch RNG streams."""
        return int(self.request.rng or 0)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def solve(self, request: SolveRequest | None = None) -> Solution:
        """(Re)solve on the current workload state.

        With ``request`` the session adopts it as the new base request
        first (``POST /v1/solve`` semantics); a request-supplied ``active``
        mask replaces the session's churn mask.  ``warm_start=True`` warms
        from the resident solution when one exists; a cold session treats
        the sentinel as a plain cold solve.

        Adoption is transactional: if the new request fails anywhere —
        unknown solver, config rejected by the solver, certificate
        failure — the previous base request and churn mask are restored,
        so one bad ``POST /v1/solve`` can never poison the session for
        every later request.  (Mid-solve, :meth:`stats` may observe the
        tentative mask; a failed adoption rolls it back before raising.)
        """
        with self._mutate_lock:
            if request is None:
                with self._lock:
                    warm = self.solution if self.request.warm_start is True else None
                return self._run(warm)
            with self._lock:
                prev_request, prev_active = self.request, self.state.active.copy()
            try:
                with self._lock:
                    if request.active is not None:
                        if request.active.shape != (self.state.n_users,):
                            raise ConfigurationError(
                                f"request active mask covers "
                                f"{request.active.shape[0]} users, session has "
                                f"{self.state.n_users}"
                            )
                        self.state.active = request.active.copy()
                    self.request = self._adopt(request)
                    warm = self.solution if self.request.warm_start is True else None
                return self._run(warm)
            except Exception:
                with self._lock:
                    self.request = prev_request
                    self.state.active = prev_active
                raise

    def apply_events(self, events: Iterable[Event]) -> Solution:
        """Fold one delta batch into the state, then warm re-solve.

        Returns the new certified solution.  If any event is invalid the
        state is untouched (events are materialised and validated against
        the universe before folding) and the resident solution survives.
        """
        with self._mutate_lock:
            batch = tuple(events)
            with self._lock:
                applied = self.state.apply(batch)
                self.events_applied += applied
                warm = self.solution
            return self._run(warm)

    def _run(self, warm: Solution | None) -> Solution:
        """One epoch: snapshot under the state lock, solve outside it,
        commit under it.  Callers hold ``_mutate_lock``, so the solver
        chain stays strictly sequential; reads never wait on the kernel.
        """
        with self._lock:
            projected = IDDEInstance(
                self.state.scenario(self.instance.scenario),
                self.instance.topology,
                self.instance.radio,
            )
            epoch = self.epoch + 1
            # Baselines have no game to re-enter or mask: they see churn
            # only through the projected scenario (inactive users request
            # nothing), exactly how the façade scopes warm_start/active.
            is_g = resolve_solver_name(self.request.solver) == "idde-g"
            active = self.state.active.copy()
            request = self.request.with_runtime(
                warm_start=warm if is_g else None,
                active=active if is_g else None,
                rng=spawn_rng(self.seed, "serve", epoch),
            )
            game_cfg = self.request.game_config or GameConfig()
        solution = execute(projected, request, tracer=self.tracer)
        certified = self._certify(solution, projected, game_cfg, active)
        if certified is False:
            self.tracer.count("serve.certificate.failed")
            raise SolverError(
                f"ε-Nash certificate failed on epoch {epoch}: the "
                f"{solution.solver} allocation admits a profitable deviation "
                f"at tol={solution.game.effective_epsilon:.3e}"
            )
        with self._lock:
            self.epoch = epoch
            self.solution = solution
            self.certified = certified
            self.solves += 1
            if warm is not None:
                self.warm_solves += 1
        self.tracer.count("serve.solves")
        if warm is not None:
            self.tracer.count("serve.solves.warm")
        self.tracer.observe("serve.solve_s", solution.wall_time_s)
        return solution

    def _certify(
        self,
        solution: Solution,
        instance: IDDEInstance,
        game_cfg: GameConfig,
        active: np.ndarray,
    ) -> bool | None:
        """Independent ε-Nash re-check on the instance actually served.

        ``None`` for solvers with no game phase (baselines carry no
        certificate to verify); otherwise the verdict of a fresh
        :class:`~repro.core.game.IddeUGame` at the solve's own claimed
        tolerance — the same re-derivation ``idde replay --verify`` does.
        Runs lock-free on snapshotted inputs (the mask the solve saw).
        """
        if solution.game is None:
            return None
        with self.tracer.span("serve.certify"):
            return IddeUGame(instance, game_cfg).is_nash(
                solution.allocation,
                tol=solution.game.effective_epsilon,
                active=active,
            )

    # ------------------------------------------------------------------
    # read side (safe mid-solve)
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Session counters for ``/v1/health``: cheap, lock-consistent."""
        with self._lock:
            return {
                "epoch": self.epoch,
                "solves": self.solves,
                "warm_solves": self.warm_solves,
                "events_applied": self.events_applied,
                "n_users": self.state.n_users,
                "n_active": self.state.n_active,
                "has_solution": self.solution is not None,
                "certified": self.certified,
            }

    def solution_document(self) -> dict[str, Any]:
        """The resident solution as ``idde-solution/2`` + session context.

        Raises :class:`~repro.errors.SolverError` when nothing has been
        solved yet (the daemon maps that to a structured 409).
        """
        with self._lock:
            if self.solution is None:
                raise SolverError(
                    "no resident solution yet; POST /v1/solve (or /v1/events) first"
                )
            doc = self.solution.to_dict()
            doc["session"] = {
                "epoch": self.epoch,
                "events_applied": self.events_applied,
                "certified": self.certified,
                "n_active": self.state.n_active,
            }
            return doc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolverSession(epoch={self.epoch}, solves={self.solves}, "
            f"events={self.events_applied}, certified={self.certified})"
        )
