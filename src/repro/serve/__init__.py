"""IDDE-Serve: the long-lived async solver service (``idde serve``).

The serving layer the ROADMAP asks for: a stateful
:class:`SolverSession` — resident instance, workload state, latest
certified solution — behind a schema-versioned HTTP/JSON API
(:class:`ServeDaemon`): ``idde-request/1`` in, ``idde-solution/2`` out,
``idde-events/1`` deltas folded into warm-started re-solves, every
response independently ε-Nash-certified.  Stdlib ``asyncio`` only — see
docs/SERVING.md for the wire reference and operational model.
"""

from .daemon import ServeConfig, ServeDaemon
from .http import (
    STATUS_BY_ERROR,
    HttpRequest,
    HttpResponse,
    error_response,
    json_response,
    status_for_error,
)
from .session import SolverSession

__all__ = [
    "STATUS_BY_ERROR",
    "HttpRequest",
    "HttpResponse",
    "ServeConfig",
    "ServeDaemon",
    "SolverSession",
    "error_response",
    "json_response",
    "status_for_error",
]
