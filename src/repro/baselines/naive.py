"""Strawman solvers for ablations and sanity floors.

:class:`RandomSolver` draws a uniformly random feasible strategy — the
floor any serious approach must clear.  :class:`NearestNeighbor` is the
classic interference-oblivious heuristic: strongest-signal server,
least-loaded channel, popularity-packed storage.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.instance import IDDEInstance
from ..core.profiles import UNALLOCATED, AllocationProfile, DeliveryProfile
from ..core.strategy import Solver

__all__ = ["RandomSolver", "NearestNeighbor"]


def _random_feasible_delivery(
    instance: IDDEInstance, rng: np.random.Generator
) -> DeliveryProfile:
    """Fill storage with uniformly random feasible placements."""
    n, k = instance.n_servers, instance.n_data
    sizes = instance.scenario.sizes
    residual = instance.scenario.storage.astype(float).copy()
    placed = np.zeros((n, k), dtype=bool)
    cells = [(i, kk) for i in range(n) for kk in range(k)]
    rng.shuffle(cells)
    for i, kk in cells:
        if not placed[i, kk] and residual[i] >= sizes[kk] and rng.random() < 0.5:
            placed[i, kk] = True
            residual[i] -= sizes[kk]
    return DeliveryProfile(placed)


class RandomSolver(Solver):
    """Uniformly random feasible allocation and delivery."""

    name = "Random"

    def _solve(
        self, instance: IDDEInstance, rng: np.random.Generator
    ) -> tuple[AllocationProfile, DeliveryProfile, dict[str, Any]]:
        scenario = instance.scenario
        alloc = AllocationProfile.empty(scenario.n_users)
        for j in range(scenario.n_users):
            covering = scenario.covering_servers[j]
            if len(covering) == 0:
                continue
            i = int(covering[rng.integers(0, len(covering))])
            x = int(rng.integers(0, scenario.channels[i]))
            alloc.server[j] = i
            alloc.channel[j] = x
        return alloc, _random_feasible_delivery(instance, rng), {}


class NearestNeighbor(Solver):
    """Strongest-signal server, least-loaded channel, popularity packing."""

    name = "Nearest"

    def _solve(
        self, instance: IDDEInstance, rng: np.random.Generator
    ) -> tuple[AllocationProfile, DeliveryProfile, dict[str, Any]]:
        scenario = instance.scenario
        engine = instance.new_engine()
        alloc = AllocationProfile.empty(scenario.n_users)
        counts = np.zeros((instance.n_servers, max(scenario.max_channels, 1)), dtype=np.int64)
        for j in range(scenario.n_users):
            covering = scenario.covering_servers[j]
            if len(covering) == 0:
                continue
            gains = engine.gain[covering, j]
            i = int(covering[int(np.argmax(gains))])
            x = int(np.argmin(counts[i, : scenario.channels[i]]))
            counts[i, x] += 1
            alloc.server[j] = i
            alloc.channel[j] = x

        # Popularity packing: most-requested items first, on every server
        # with room (interference- and topology-oblivious).
        popularity = instance.requests_per_item
        order = np.argsort(-popularity, kind="stable")
        sizes = scenario.sizes
        residual = scenario.storage.astype(float).copy()
        placed = np.zeros((instance.n_servers, instance.n_data), dtype=bool)
        for kk in order:
            fits = residual >= sizes[kk]
            placed[fits, kk] = True
            residual[fits] -= sizes[kk]
        return alloc, DeliveryProfile(placed), {}
