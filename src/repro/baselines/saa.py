"""SAA — Sample Average Approximation placement (after Ning et al. [21]).

Each edge server makes its own data delivery decisions from the requests
arriving in its coverage, maximising a *sampled* storage utility that mixes
latency reduction and user coverage (Section 4.1).  Following the source's
distributed-placement design, servers refine their decisions over a few
sweeps of better-response given the other servers' current placements, with
demand estimated by Monte-Carlo resampling of the covered users' requests
("sample average").  The repeated sampling is what makes SAA the
second-slowest approach in Fig. 7 — and the distributed refinement is what
makes it the *second-best* on latency: unlike CDP/DUP-G it avoids
duplicating items a nearby server already holds.

Its weakness is the last mile: the source models service placement, not
radio access, so allocation is entirely unmanaged — a user associates with
an arbitrary (uniformly random) covering server on an arbitrary channel.
That costs SAA the data-rate objective: it is the worst approach on
``R_avg`` in every figure, exactly as in the paper.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.instance import IDDEInstance
from ..core.profiles import AllocationProfile, DeliveryProfile
from ..core.strategy import Solver

__all__ = ["SAA"]


class SAA(Solver):
    """Distributed sampled-utility placement with signal-greedy allocation."""

    name = "SAA"

    def __init__(
        self,
        *,
        n_samples: int = 50,
        n_rounds: int = 3,
        coverage_weight: float = 0.25,
        sample_fraction: float = 0.8,
    ) -> None:
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        if not (0.0 < sample_fraction <= 1.0):
            raise ValueError(f"sample_fraction must be in (0, 1], got {sample_fraction}")
        #: Monte-Carlo samples of the covered request mix per server sweep.
        self.n_samples = n_samples
        #: Better-response sweeps over the servers.
        self.n_rounds = n_rounds
        #: Relative weight of the user-coverage term in the utility.
        self.coverage_weight = coverage_weight
        #: Fraction of covered users present in each sample.
        self.sample_fraction = sample_fraction

    # ------------------------------------------------------------------
    # allocation (interference-oblivious)
    # ------------------------------------------------------------------
    def _allocate(
        self, instance: IDDEInstance, rng: np.random.Generator
    ) -> AllocationProfile:
        scenario = instance.scenario
        alloc = AllocationProfile.empty(scenario.n_users)
        for j in range(scenario.n_users):
            covering = scenario.covering_servers[j]
            if len(covering) == 0:
                continue
            i = int(covering[rng.integers(0, len(covering))])
            alloc.server[j] = i
            alloc.channel[j] = int(rng.integers(0, scenario.channels[i]))
        return alloc

    # ------------------------------------------------------------------
    # placement (distributed sampled better-response)
    # ------------------------------------------------------------------
    def _sampled_demand(
        self, instance: IDDEInstance, i: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Average per-item demand and coverage over request samples.

        Returns ``(demand, coverage)``: the expected request count per item
        among server ``i``'s covered users and the expected number of
        distinct covered requesters per item.
        """
        scenario = instance.scenario
        covered = np.flatnonzero(scenario.coverage[i])
        k = instance.n_data
        if len(covered) == 0:
            return np.zeros(k), np.zeros(k)
        zeta = scenario.requests[covered].astype(float)  # (C, K)
        take = max(1, int(round(self.sample_fraction * len(covered))))
        demand = np.zeros(k)
        coverage = np.zeros(k)
        for _ in range(self.n_samples):
            picks = rng.choice(len(covered), size=take, replace=False)
            sample = zeta[picks]
            demand += sample.sum(axis=0)
            coverage += (sample > 0).any(axis=0).astype(float)
        return demand / self.n_samples, coverage / self.n_samples

    def _place(
        self, instance: IDDEInstance, rng: np.random.Generator
    ) -> DeliveryProfile:
        scenario = instance.scenario
        n, k = instance.n_servers, instance.n_data
        sizes = scenario.sizes
        pc = instance.latency_model.path_cost
        cloud = instance.latency_model.cloud_cost
        placed = np.zeros((n, k), dtype=bool)

        for _ in range(self.n_rounds):
            order = rng.permutation(n)
            for i in order:
                demand, coverage = self._sampled_demand(instance, int(i), rng)
                # Retrieval cost at server i for each item if i holds nothing,
                # given everyone else's current placements.
                others = placed.copy()
                others[i, :] = False
                base_cost = np.empty(k)
                for kk in range(k):
                    holders = np.flatnonzero(others[:, kk])
                    per_mb = pc[holders, i].min() if len(holders) else cloud
                    base_cost[kk] = sizes[kk] * min(per_mb, cloud)
                # Utility of holding item k locally: sampled demand times the
                # latency saved, plus the coverage bonus.
                utility = demand * base_cost + self.coverage_weight * coverage
                score = utility / sizes
                ranked = np.argsort(-score, kind="stable")
                residual = float(scenario.storage[i])
                placed[i, :] = False
                for kk in ranked:
                    if utility[kk] <= 0.0:
                        break
                    if sizes[kk] <= residual:
                        placed[i, kk] = True
                        residual -= sizes[kk]
        return DeliveryProfile(placed)

    # ------------------------------------------------------------------
    def _solve(
        self, instance: IDDEInstance, rng: np.random.Generator
    ) -> tuple[AllocationProfile, DeliveryProfile, dict[str, Any]]:
        alloc = self._allocate(instance, rng)
        delivery = self._place(instance, rng)
        return alloc, delivery, {
            "n_samples": self.n_samples,
            "n_rounds": self.n_rounds,
        }
