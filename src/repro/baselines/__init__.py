"""Benchmark approaches from Section 4.1, plus extra ablation solvers.

* :class:`~repro.baselines.idde_ip.IddeIP` — time-capped joint search
  standing in for the paper's CPLEX CP Optimizer run (100 s cap);
* :class:`~repro.baselines.saa.SAA` — sample-average-approximation
  per-server placement (Ning et al. [21] style);
* :class:`~repro.baselines.cdp.CDP` — centralised one-pass greedy
  placement by absolute latency reduction (Liu et al. [16] style);
* :class:`~repro.baselines.dup_g.DupG` — server-granularity allocation
  game without edge collaboration (Xia et al. [33] style);
* :mod:`~repro.baselines.naive` — random / nearest-server strawmen used
  by the ablation benches.

:func:`default_solvers` returns the paper's five-approach line-up in
figure order.
"""

from __future__ import annotations

from ..core.idde_g import IddeG
from ..core.strategy import Solver
from .cdp import CDP
from .dup_g import DupG
from .idde_ip import IddeIP
from .naive import NearestNeighbor, RandomSolver
from .saa import SAA

__all__ = [
    "Solver",
    "IddeIP",
    "IddeG",
    "SAA",
    "CDP",
    "DupG",
    "RandomSolver",
    "NearestNeighbor",
    "default_solvers",
    "solver_by_name",
]


def default_solvers(*, ip_time_budget: float = 10.0) -> list[Solver]:
    """The paper's five approaches, in the order of Figs. 3–7."""
    return [
        IddeIP(time_budget_s=ip_time_budget),
        IddeG(),
        SAA(),
        CDP(),
        DupG(),
    ]


def solver_by_name(name: str, **kwargs) -> Solver:
    """Instantiate a solver from its report name (case-insensitive)."""
    table = {
        "idde-ip": IddeIP,
        "idde-g": IddeG,
        "saa": SAA,
        "cdp": CDP,
        "dup-g": DupG,
        "dupg": DupG,
        "random": RandomSolver,
        "nearest": NearestNeighbor,
    }
    key = name.strip().lower()
    if key not in table:
        raise KeyError(f"unknown solver {name!r}; choose from {sorted(table)}")
    return table[key](**kwargs)
