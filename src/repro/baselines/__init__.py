"""Benchmark approaches from Section 4.1, plus extra ablation solvers.

* :class:`~repro.baselines.idde_ip.IddeIP` — time-capped joint search
  standing in for the paper's CPLEX CP Optimizer run (100 s cap);
* :class:`~repro.baselines.saa.SAA` — sample-average-approximation
  per-server placement (Ning et al. [21] style);
* :class:`~repro.baselines.cdp.CDP` — centralised one-pass greedy
  placement by absolute latency reduction (Liu et al. [16] style);
* :class:`~repro.baselines.dup_g.DupG` — server-granularity allocation
  game without edge collaboration (Xia et al. [33] style);
* :mod:`~repro.baselines.naive` — random / nearest-server strawmen used
  by the ablation benches.

:func:`default_solvers` returns the paper's five-approach line-up in
figure order.  Name-based construction goes through the registry
(:func:`resolve_solver_name` / :func:`solver_by_name`), which is also what
the :func:`repro.api.solve` façade uses: unknown names raise
:class:`~repro.errors.SolverLookupError` with a did-you-mean suggestion,
and keyword arguments a solver's constructor cannot accept are dropped
with a :class:`DeprecationWarning` instead of a ``TypeError`` (the
pre-façade ``solver_by_name(**kwargs)`` contract).
"""

from __future__ import annotations

import difflib
import inspect
import warnings

from ..core.idde_g import IddeG
from ..core.strategy import Solver
from ..errors import SolverLookupError
from .cdp import CDP
from .dup_g import DupG
from .idde_ip import IddeIP
from .naive import NearestNeighbor, RandomSolver
from .saa import SAA

__all__ = [
    "Solver",
    "IddeIP",
    "IddeG",
    "SAA",
    "CDP",
    "DupG",
    "RandomSolver",
    "NearestNeighbor",
    "CANONICAL_SOLVERS",
    "resolve_solver_name",
    "default_solvers",
    "solver_by_name",
]

#: Registry name → solver class.  Aliases ("dupg") map to the same class.
_FACTORIES: dict[str, type[Solver]] = {
    "idde-ip": IddeIP,
    "idde-g": IddeG,
    "saa": SAA,
    "cdp": CDP,
    "dup-g": DupG,
    "dupg": DupG,
    "random": RandomSolver,
    "nearest": NearestNeighbor,
}

#: The paper's five approaches, registry-named, in the order of Figs. 3–7.
CANONICAL_SOLVERS: tuple[str, ...] = ("idde-ip", "idde-g", "saa", "cdp", "dup-g")


def resolve_solver_name(name: str) -> str:
    """Normalise a solver name to its registry key.

    Raises
    ------
    SolverLookupError
        For unknown names, with a did-you-mean suggestion when a close
        registry key exists.  (Still a :class:`KeyError`, for callers of
        the pre-registry lookup.)
    """
    key = str(name).strip().lower()
    if key in _FACTORIES:
        return key
    close = difflib.get_close_matches(key, _FACTORIES, n=1, cutoff=0.5)
    hint = f" — did you mean {close[0]!r}?" if close else ""
    raise SolverLookupError(
        f"unknown solver {name!r}{hint} (choose from {sorted(_FACTORIES)})"
    )


def _accepted_kwargs(cls: type[Solver]) -> frozenset[str]:
    """Keyword names ``cls()`` accepts (none for bare ``object.__init__``)."""
    if cls.__init__ is object.__init__:
        return frozenset()
    params = inspect.signature(cls.__init__).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return frozenset(("*",))
    return frozenset(
        n
        for n, p in params.items()
        if n != "self"
        and p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    )


def solver_by_name(name: str, **kwargs) -> Solver:
    """Instantiate a solver from its report name (case-insensitive).

    Keyword arguments the solver's constructor does not accept are dropped
    with a :class:`DeprecationWarning` naming them — the historical
    contract where callers passed one kwarg bundle to every solver name.
    New code should construct solver classes directly, or go through
    :func:`repro.api.solve`.
    """
    cls = _FACTORIES[resolve_solver_name(name)]
    accepted = _accepted_kwargs(cls)
    if "*" not in accepted:
        dropped = sorted(set(kwargs) - accepted)
        if dropped:
            warnings.warn(
                f"solver {name!r} does not accept {dropped}; dropping them. "
                "Pass only applicable kwargs (or use repro.api.solve).",
                DeprecationWarning,
                stacklevel=2,
            )
            kwargs = {k: v for k, v in kwargs.items() if k in accepted}
    return cls(**kwargs)


def default_solvers(*, ip_time_budget: float = 10.0) -> list[Solver]:
    """The paper's five approaches, in the order of Figs. 3–7."""
    budget = {"idde-ip": {"time_budget_s": ip_time_budget}}
    return [solver_by_name(n, **budget.get(n, {})) for n in CANONICAL_SOLVERS]
