"""DUP-G — Data, User and Power allocation game (after Xia et al. [33]).

The game-theoretic baseline of Section 4.1.  Two deliberate deviations from
IDDE-G, both lifted from the cited paper's setting:

1. **Server-granularity game.** Users best-respond at the *server* level:
   the benefit a user perceives treats all users attached to a candidate
   server as one interference pool (no channel structure in the game).
   Channels are only drawn afterwards, uniformly at random per user — the
   cited model allocates data, users and power but does not manage the
   channel dimension.  The equilibrium therefore balances server loads but
   neither intra-cell nor cross-cell channel loads, costing substantial
   data rate relative to IDDE-U's channel-level play.
2. **No edge collaboration.** Delivery decisions are taken per server from
   *global content popularity*, ignoring both the realised local demand and
   that a neighbour's replica could serve its users over the high-speed
   links.  Every server therefore packs the same most-popular items into
   its reserved storage; the popularity tail is cached nowhere in the
   system and its requests fall through to the cloud, which is what makes
   DUP-G the worst approach on delivery latency in every figure.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.instance import IDDEInstance
from ..core.profiles import UNALLOCATED, AllocationProfile, DeliveryProfile
from ..core.strategy import Solver

__all__ = ["DupG"]


class DupG(Solver):
    """Server-level allocation game + collaboration-blind local packing."""

    name = "DUP-G"

    def __init__(self, *, max_rounds: int = 10_000, epsilon: float = 1e-9) -> None:
        self.max_rounds = max_rounds
        self.epsilon = epsilon

    # ------------------------------------------------------------------
    def _server_game(self, instance: IDDEInstance) -> tuple[np.ndarray, int]:
        """Best-response dynamics over servers only.

        A user's benefit at server ``i`` is the channel-blind, intra-cell
        analogue of Eq. (12): own power over the power pool it would join,

        ``β(i) = p_j / (load_i + p_j)``

        — the classic weighted-congestion benefit of the cited game.  With
        all of a server's channels pooled, the cross-cell gain terms cancel
        out of the comparison and the dynamics reduce to gain-blind load
        balancing across the covering servers.
        """
        scenario = instance.scenario
        p = scenario.power
        load = np.zeros(instance.n_servers)
        assigned = np.full(scenario.n_users, UNALLOCATED, dtype=np.int64)

        rounds = 0
        for rounds in range(1, self.max_rounds + 1):
            moved = False
            for j in range(scenario.n_users):
                covering = scenario.covering_servers[j]
                if len(covering) == 0:
                    continue
                cur = assigned[j]
                base = load[covering].copy()
                if cur != UNALLOCATED:
                    base[covering == cur] -= p[j]
                benefit = p[j] / (base + p[j])
                best = int(np.argmax(benefit))
                target = int(covering[best])
                if cur == UNALLOCATED:
                    improve = True
                else:
                    cur_pos = int(np.flatnonzero(covering == cur)[0])
                    improve = benefit[best] > benefit[cur_pos] * (1.0 + self.epsilon)
                if improve and target != cur:
                    if cur != UNALLOCATED:
                        load[cur] -= p[j]
                    load[target] += p[j]
                    assigned[j] = target
                    moved = True
            if not moved:
                break
        return assigned, rounds

    @staticmethod
    def _draw_channels(
        instance: IDDEInstance, assigned: np.ndarray, rng: np.random.Generator
    ) -> AllocationProfile:
        scenario = instance.scenario
        alloc = AllocationProfile.empty(scenario.n_users)
        for j in np.flatnonzero(assigned != UNALLOCATED):
            i = int(assigned[j])
            alloc.server[j] = i
            alloc.channel[j] = int(rng.integers(0, scenario.channels[i]))
        return alloc

    @staticmethod
    def _popularity_packing(
        instance: IDDEInstance, alloc: AllocationProfile
    ) -> DeliveryProfile:
        """Each serving server packs the globally most popular items.

        Collaboration-blind: servers never coordinate, so they all rank the
        same items and replicate the head of the popularity distribution.
        """
        scenario = instance.scenario
        sizes = scenario.sizes
        popularity = instance.requests_per_item.astype(float)
        order = np.argsort(-popularity / sizes, kind="stable")
        placed = np.zeros((instance.n_servers, instance.n_data), dtype=bool)
        for i in range(instance.n_servers):
            if len(alloc.users_of_server(i)) == 0:
                continue
            residual = float(scenario.storage[i])
            for kk in order:
                if popularity[kk] <= 0:
                    break
                if sizes[kk] <= residual:
                    placed[i, kk] = True
                    residual -= sizes[kk]
        return DeliveryProfile(placed)

    # ------------------------------------------------------------------
    def _solve(
        self, instance: IDDEInstance, rng: np.random.Generator
    ) -> tuple[AllocationProfile, DeliveryProfile, dict[str, Any]]:
        assigned, rounds = self._server_game(instance)
        alloc = self._draw_channels(instance, assigned, rng)
        delivery = self._popularity_packing(instance, alloc)
        return alloc, delivery, {"game_rounds": rounds}
