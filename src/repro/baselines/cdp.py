"""CDP — Centralized Data Placement (after Liu et al. [16]).

A one-pass centralised greedy built on the same communication model as
IDDE-G (Section 4.1).  Two structural simplifications, both taken from the
Fog-RAN cache-placement setting the approach originates in:

1. **Channel-agnostic allocation.** CDP is a *placement* approach: users
   are attached once to their strongest-signal server (the Fog-RAN
   association rule) and the channel within the cell is not managed — each
   user lands on a uniformly random channel.  No game iterations, which is
   why CDP is the *fastest* approach in Fig. 7, and no interference
   management, which is what costs it data rate relative to IDDE-U.
2. **Popularity-driven placement.** Placement is greedy by **absolute**
   latency reduction (not reduction per megabyte) and works from aggregate
   content popularity spread uniformly over the cells — the Fog-RAN
   demand model — rather than the realised per-server attachment counts.
   Both choices cost latency relative to IDDE-G's Eq. (17) rule: big items
   crowd out several small high-value placements, and demand mass is
   credited to servers whose users never asked for the item.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..config import DeliveryConfig
from ..core.delivery import greedy_delivery
from ..core.instance import IDDEInstance
from ..core.profiles import AllocationProfile, DeliveryProfile
from ..core.strategy import Solver

__all__ = ["CDP"]


class CDP(Solver):
    """Centralised one-pass allocation + popularity-uniform greedy placement."""

    name = "CDP"

    def _solve(
        self, instance: IDDEInstance, rng: np.random.Generator
    ) -> tuple[AllocationProfile, DeliveryProfile, dict[str, Any]]:
        scenario = instance.scenario
        engine = instance.new_engine()
        alloc = AllocationProfile.empty(scenario.n_users)
        for j in range(scenario.n_users):
            covering = scenario.covering_servers[j]
            if len(covering) == 0:
                continue
            i = int(covering[int(np.argmax(engine.gain[covering, j]))])
            alloc.server[j] = i
            alloc.channel[j] = int(rng.integers(0, scenario.channels[i]))

        # Fog-RAN demand model: item popularity spread uniformly per cell.
        popularity = instance.requests_per_item.astype(float)
        weights = np.tile(
            (popularity / max(instance.n_servers, 1))[:, None], (1, instance.n_servers)
        )
        delivery = greedy_delivery(
            instance, alloc, DeliveryConfig(ratio_rule=False), weights=weights
        )
        return alloc, delivery.profile, {"delivery_iterations": delivery.iterations}
