"""IDDE-IP — budgeted exact-style search (CPLEX CP Optimizer stand-in).

The paper's IDDE-IP hands the full integer model — allocation *and*
delivery variables together — to IBM CPLEX's CP Optimizer with the search
capped at 100 seconds.  Because the IDDE problem is NP-hard, the cap
truncates the search and the returned *incumbent* is consistently a little
worse than IDDE-G on both objectives while costing two to three orders of
magnitude more time (Figs. 3–7).

Without the proprietary solver we reproduce the two experimentally relevant
properties — anytime incumbent quality on the *joint* model and a hard
wall-clock budget — with budgeted simulated annealing over the combined
decision vector: each proposal either relocates one user or flips one
delivery placement, and acceptance is judged on the scalarised
bi-objective ``J = R_avg/B − L_avg/L_cloud`` the CP model's lexicographic
search effectively explores.  Searching the joint space is exactly what
makes the approach spend its budget inefficiently relative to IDDE-G's
decomposition — the behaviour the paper measures.  The substitution is
documented in DESIGN.md.
"""

from __future__ import annotations

import math
import time
from typing import Any

import numpy as np

from ..core.instance import IDDEInstance
from ..core.objectives import retrieval_cost_table
from ..core.profiles import UNALLOCATED, AllocationProfile, DeliveryProfile
from ..core.strategy import Solver
from ..units import seconds_to_ms

__all__ = ["IddeIP"]


class IddeIP(Solver):
    """Anytime joint (α, σ) annealing search under a wall-clock budget."""

    name = "IDDE-IP"

    def __init__(
        self,
        *,
        time_budget_s: float = 10.0,
        initial_temperature: float = 0.05,
        final_temperature: float = 0.001,
        latency_weight: float = 0.5,
        check_every: int = 32,
    ) -> None:
        if time_budget_s <= 0:
            raise ValueError(f"time_budget_s must be > 0, got {time_budget_s}")
        #: Total search budget in seconds (the paper used 100 s).
        self.time_budget_s = time_budget_s
        self.t_start = initial_temperature
        self.t_end = final_temperature
        #: Weight of the normalised latency term in the scalarised objective.
        self.latency_weight = latency_weight
        #: Wall-clock polls happen every this many proposals.
        self.check_every = check_every

    # ------------------------------------------------------------------
    def _solve(
        self, instance: IDDEInstance, rng: np.random.Generator
    ) -> tuple[AllocationProfile, DeliveryProfile, dict[str, Any]]:
        scenario = instance.scenario
        n, k = instance.n_servers, instance.n_data
        sizes = scenario.sizes
        storage = scenario.storage
        cloud_ms = seconds_to_ms(
            float(sizes.mean()) * instance.latency_model.cloud_cost
        ) if k else 1.0
        bandwidth = instance.radio.bandwidth

        engine = instance.new_engine()
        movable = [
            j
            for j in range(scenario.n_users)
            if len(scenario.covering_servers[j]) > 0
        ]
        # Feasible cold start: every user on a random covering channel.
        for j in movable:
            covering = scenario.covering_servers[j]
            i = int(covering[rng.integers(0, len(covering))])
            x = int(rng.integers(0, scenario.channels[i]))
            engine.assign(j, i, x)

        delivery = DeliveryProfile.empty(n, k)
        used = delivery.used_storage(sizes)

        def latency_ms() -> float:
            zeta = scenario.requests
            total = zeta.sum()
            if total == 0:
                return 0.0
            table = retrieval_cost_table(instance, delivery)
            attached = engine.alloc_server
            lat = np.where(
                (attached != UNALLOCATED)[:, None],
                table[np.maximum(attached, 0)],
                sizes[None, :] * instance.latency_model.cloud_cost,
            )
            return seconds_to_ms(float((lat * zeta).sum() / total))

        def objective() -> float:
            return engine.average_rate() / bandwidth - self.latency_weight * (
                latency_ms() / max(cloud_ms, 1e-9)
            )

        current = objective()
        best = current
        best_state = (
            engine.alloc_server.copy(),
            engine.alloc_channel.copy(),
            delivery.placed.copy(),
        )

        t0 = time.perf_counter()
        deadline = t0 + self.time_budget_s
        span = max(deadline - t0, 1e-6)
        proposals = 0
        accepted = 0
        while True:
            if proposals % self.check_every == 0 and time.perf_counter() >= deadline:
                break
            proposals += 1
            frac = min((time.perf_counter() - t0) / span, 1.0)
            temp = self.t_start * (self.t_end / self.t_start) ** frac
            if movable and (k == 0 or rng.random() < 0.5):
                # Relocate one user.
                j = movable[int(rng.integers(0, len(movable)))]
                covering = scenario.covering_servers[j]
                i = int(covering[rng.integers(0, len(covering))])
                x = int(rng.integers(0, scenario.channels[i]))
                old_i, old_x = int(engine.alloc_server[j]), int(engine.alloc_channel[j])
                if (i, x) == (old_i, old_x):
                    continue
                engine.move(j, i, x)
                revert = lambda: engine.move(j, old_i, old_x)  # noqa: E731
            else:
                # Flip one delivery placement.
                i = int(rng.integers(0, n))
                kk = int(rng.integers(0, k))
                if delivery.placed[i, kk]:
                    delivery.placed[i, kk] = False
                    used[i] -= sizes[kk]

                    def revert(i=i, kk=kk):  # noqa: E731
                        delivery.placed[i, kk] = True
                        used[i] += sizes[kk]

                else:
                    if used[i] + sizes[kk] > storage[i] + 1e-9:
                        continue
                    delivery.placed[i, kk] = True
                    used[i] += sizes[kk]

                    def revert(i=i, kk=kk):  # noqa: E731
                        delivery.placed[i, kk] = False
                        used[i] -= sizes[kk]

            candidate = objective()
            delta = candidate - current
            if delta >= 0 or rng.random() < math.exp(delta / max(temp, 1e-12)):
                current = candidate
                accepted += 1
                if current > best:
                    best = current
                    best_state = (
                        engine.alloc_server.copy(),
                        engine.alloc_channel.copy(),
                        delivery.placed.copy(),
                    )
            else:
                revert()

        alloc = AllocationProfile(best_state[0], best_state[1])
        out = DeliveryProfile(best_state[2])
        return alloc, out, {
            "proposals": proposals,
            "accepted": accepted,
            "time_budget_s": self.time_budget_s,
            "best_objective": best,
        }
