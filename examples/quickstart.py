#!/usr/bin/env python
"""Quickstart: the paper's Fig. 2 example system, solved with IDDE-G.

Builds the illustrative edge storage system from the paper's introduction —
4 edge servers, 9 users, 4 data items — and walks through the full IDDE
pipeline: user allocation (Phase 1, the IDDE-U game), data delivery
(Phase 2, the greedy placement), and evaluation of both objectives.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import IddeG, RadioConfig
from repro.core.instance import IDDEInstance
from repro.topology.graph import EdgeTopology
from repro.types import Scenario


def build_fig2_system() -> IDDEInstance:
    """The exemplar system of the paper's Fig. 2.

    Four servers arranged so that adjacent coverage discs overlap (users
    u6 and u7 sit in overlap zones, as in the figure); 9 users requesting
    4 data items: d1 by {u1, u6, u8}, d2 by {u3, u5, u9}, d3 by {u2, u6},
    d4 by {u4}.
    """
    server_xy = np.array(
        [[0.0, 300.0], [0.0, 0.0], [400.0, 300.0], [400.0, 0.0]], dtype=float
    )
    radius = np.array([260.0, 260.0, 260.0, 260.0])
    user_xy = np.array(
        [
            [-80.0, 350.0],   # u1 — near v1
            [-60.0, 60.0],    # u2 — near v2
            [60.0, 150.0],    # u3 — between v1 and v2
            [120.0, -40.0],   # u4 — near v2
            [110.0, 40.0],    # u5 — near v2
            [220.0, 300.0],   # u6 — overlap of v1 and v3
            [400.0, 150.0],   # u7 — overlap of v3 and v4
            [480.0, 60.0],    # u8 — near v4
            [460.0, -30.0],   # u9 — near v4
        ],
        dtype=float,
    )
    # Request matrix ζ: rows u1..u9, columns d1..d4.
    requests = np.zeros((9, 4), dtype=bool)
    requests[[0, 5, 7], 0] = True  # d1: u1, u6, u8
    requests[[2, 4, 8], 1] = True  # d2: u3, u5, u9
    requests[[1, 5], 2] = True     # d3: u2, u6
    requests[3, 3] = True          # d4: u4

    rng = np.random.default_rng(42)
    scenario = Scenario(
        server_xy=server_xy,
        radius=radius,
        storage=np.array([120.0, 90.0, 150.0, 60.0]),
        channels=np.full(4, 2, dtype=np.int64),  # 2 channels, as in §1
        user_xy=user_xy,
        power=rng.uniform(1.0, 5.0, size=9),
        rmax=rng.uniform(180.0, 220.0, size=9),
        sizes=np.array([60.0, 30.0, 60.0, 90.0]),
        requests=requests,
    )
    # The figure's link structure: v1-v2, v1-v3, v2-v4, v3-v4.
    topology = EdgeTopology(
        n=4,
        links=np.array([[0, 1], [0, 2], [1, 3], [2, 3]]),
        speeds=np.array([4000.0, 3000.0, 3500.0, 5000.0]),
        cloud_speed=600.0,
    )
    return IDDEInstance(scenario, topology, RadioConfig(channels_per_server=2))


def main() -> None:
    instance = build_fig2_system()
    print(f"instance: {instance}")
    print()

    strategy = IddeG(track_potential=True).solve(instance, rng=0)

    print("=== Phase 1: user allocation profile (the IDDE-U equilibrium) ===")
    for j in range(instance.n_users):
        i = strategy.allocation.server[j]
        x = strategy.allocation.channel[j]
        print(f"  u{j + 1} -> server v{i + 1}, channel {x + 1}")
    print(f"  Nash equilibrium certified: {strategy.extras['is_nash']}")
    print(f"  game rounds: {strategy.extras['game_rounds']}, "
          f"moves: {strategy.extras['game_moves']}")
    print()

    print("=== Phase 2: data delivery profile (greedy placement) ===")
    for k in range(instance.n_data):
        holders = [f"v{i + 1}" for i in strategy.delivery.servers_holding(k)]
        origin = ", ".join(holders) if holders else "cloud only"
        print(f"  d{k + 1} ({instance.scenario.sizes[k]:.0f} MB) -> {origin}")
    used = strategy.delivery.used_storage(instance.scenario.sizes)
    for i in range(instance.n_servers):
        print(
            f"  v{i + 1} storage: {used[i]:.0f}/{instance.scenario.storage[i]:.0f} MB"
        )
    print()

    print("=== Objectives ===")
    print(f"  R_avg (objective #1, maximise): {strategy.r_avg:8.2f} MB/s")
    print(f"  L_avg (objective #2, minimise): {strategy.l_avg_ms:8.2f} ms")
    print(f"  solved in {strategy.wall_time_s * 1000:.1f} ms")


if __name__ == "__main__":
    main()
