#!/usr/bin/env python
"""Interference study: why channel-aware allocation matters.

Reproduces the paper's §1 argument — "allocating too many users to the same
channel on an edge server tends to incur severe interference and lowers
users' average data rates" — as a quantitative experiment:

1. sweeps the number of channels per server (1..5) and shows how the
   equilibrium's average rate responds;
2. compares, at the paper's 3 channels, four allocation policies of
   increasing sophistication (random server+channel, strongest server +
   random channel, strongest server + balanced channel, the IDDE-U game)
   — the decentralised equilibrium matches centrally engineered channel
   balancing, without any coordinator;
3. prints the per-user rate distribution (min / median / mean / max) for
   the worst and best policies, showing the fairness gap the game closes.

Run:  python examples/interference_study.py
"""

import numpy as np

from repro.config import RadioConfig, ScenarioConfig
from repro.core.game import IddeUGame
from repro.core.instance import IDDEInstance
from repro.core.objectives import average_data_rate
from repro.core.profiles import AllocationProfile


def build_instance(channels: int, seed: int = 7) -> IDDEInstance:
    cfg = ScenarioConfig(radio=RadioConfig(channels_per_server=channels))
    return IDDEInstance.generate(n=25, m=220, k=5, density=1.2, seed=seed, config=cfg)


def policy_alloc(instance, policy: str, rng: np.random.Generator) -> AllocationProfile:
    scenario = instance.scenario
    engine = instance.new_engine()
    counts = np.zeros((instance.n_servers, scenario.max_channels), dtype=np.int64)
    alloc = AllocationProfile.empty(scenario.n_users)
    for j in range(scenario.n_users):
        covering = scenario.covering_servers[j]
        if len(covering) == 0:
            continue
        if policy == "random":
            i = int(covering[rng.integers(0, len(covering))])
            x = int(rng.integers(0, scenario.channels[i]))
        elif policy == "strongest+random":
            i = int(covering[int(np.argmax(engine.gain[covering, j]))])
            x = int(rng.integers(0, scenario.channels[i]))
        elif policy == "strongest+balanced":
            i = int(covering[int(np.argmax(engine.gain[covering, j]))])
            x = int(np.argmin(counts[i, : scenario.channels[i]]))
            counts[i, x] += 1
        else:
            raise ValueError(policy)
        alloc.server[j] = i
        alloc.channel[j] = x
    return alloc


def rate_stats(instance, alloc) -> tuple[float, float, float, float]:
    engine = instance.new_engine()
    engine.load_profile(alloc.server, alloc.channel)
    rates = engine.rates()
    return (
        float(rates.min()),
        float(np.median(rates)),
        float(rates.mean()),
        float(rates.max()),
    )


def main() -> None:
    print("=== 1. Channels per server vs equilibrium average rate ===")
    print(f"{'channels':>8} | {'R_avg (MB/s)':>12}")
    for channels in range(1, 6):
        instance = build_instance(channels)
        result = IddeUGame(instance).run(rng=0)
        r = average_data_rate(instance, result.profile)
        print(f"{channels:>8} | {r:12.2f}")
    print()

    print("=== 2. Allocation policies at 3 channels (the paper's setting) ===")
    instance = build_instance(3)
    rng = np.random.default_rng(0)
    policies: dict[str, AllocationProfile] = {
        "random": policy_alloc(instance, "random", rng),
        "strongest+random": policy_alloc(instance, "strongest+random", rng),
        "strongest+balanced": policy_alloc(instance, "strongest+balanced", rng),
    }
    game_profile = IddeUGame(instance).run(rng=0).profile
    policies["IDDE-U game"] = game_profile
    print(f"{'policy':>20} | {'R_avg (MB/s)':>12}")
    for name, alloc in policies.items():
        print(f"{name:>20} | {average_data_rate(instance, alloc):12.2f}")
    print()

    print("=== 3. Per-user rate distribution: worst vs best policy ===")
    print(f"{'policy':>20} | {'min':>7} | {'median':>7} | {'mean':>7} | {'max':>7}")
    for name in ("random", "IDDE-U game"):
        mn, med, mean, mx = rate_stats(instance, policies[name])
        print(f"{name:>20} | {mn:7.1f} | {med:7.1f} | {mean:7.1f} | {mx:7.1f}")
    print()
    print("The game lifts the floor: interference-aware allocation protects")
    print("the worst-served users, not just the average.")


if __name__ == "__main__":
    main()
