#!/usr/bin/env python
"""Dynamic IDDE: mobile users, re-solve policies, and data migration.

The paper's future work — "the dynamics of user movements and data
migrations in IDDE scenarios" — implemented: users follow a random-waypoint
walk across the CBD while the system re-formulates its strategy each epoch
under three policies:

* ``warm``   — re-run the IDDE-U game warm-started from the repaired
  previous equilibrium (churn-proportional effort);
* ``cold``   — re-solve from scratch every epoch;
* ``static`` — never re-solve (shows how fast a stale strategy decays).

The epoch report tracks both objectives plus the *operational* costs the
static formulation hides: reallocated users, best-response moves, and the
megabytes of replica migration between consecutive delivery profiles.

Run:  python examples/dynamic_mobility.py
"""

from repro import IDDEInstance
from repro.datasets.melbourne import CBD_REGION
from repro.dynamics import DynamicSimulation, RandomWaypoint

EPOCHS = 8
DT = 45.0  # seconds per epoch
SPEEDS = (8.0, 20.0)  # an e-scooter-ish crowd, m/s


def run_policy(instance: IDDEInstance, policy: str):
    mobility = RandomWaypoint(
        instance.scenario.user_xy, CBD_REGION, rng=7, speed_range=SPEEDS
    )
    sim = DynamicSimulation(instance, mobility, policy=policy)
    return sim.run(epochs=EPOCHS, dt=DT, rng=7)


def main() -> None:
    instance = IDDEInstance.generate(n=20, m=120, k=5, density=1.5, seed=7)
    print(f"instance: {instance}; {EPOCHS} epochs x {DT:.0f}s at {SPEEDS} m/s\n")

    results = {policy: run_policy(instance, policy) for policy in ("warm", "cold", "static")}

    print("=== epoch-by-epoch average data rate (MB/s) ===")
    header = " epoch | " + " | ".join(f"{p:>7}" for p in results)
    print(header)
    for epoch in range(EPOCHS):
        row = f"{epoch:>6} | " + " | ".join(
            f"{results[p][epoch].r_avg:7.2f}" for p in results
        )
        print(row)
    print()

    print("=== steady-state summary (epochs 1+) ===")
    print(f"{'policy':>7} | {'R_avg':>7} | {'L_avg ms':>8} | {'realloc':>7} | "
          f"{'moves':>6} | {'migr MB':>8} | {'solve s':>8}")
    for policy, records in results.items():
        s = DynamicSimulation.summarize(records)
        print(
            f"{policy:>7} | {s['mean_r_avg']:7.2f} | {s['mean_l_avg_ms']:8.2f} | "
            f"{s['mean_realloc']:7.1f} | {s['mean_moves']:6.1f} | "
            f"{s['mean_migration_mb']:8.1f} | {s['mean_solve_time_s']:8.4f}"
        )
    print()
    print("Reading the table: 'static' decays as users walk out of coverage;")
    print("'warm' matches 'cold' quality at a fraction of the game moves,")
    print("and the migration column prices the replica churn that dynamic")
    print("re-formulation costs the edge network.")


if __name__ == "__main__":
    main()
