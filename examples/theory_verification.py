#!/usr/bin/env python
"""Theory verification: the paper's bounds checked against exact optima.

On instances small enough to solve exhaustively, this example certifies:

* **Theorem 4** — the game's move count stays under the iteration bound;
* **Theorem 5** — the equilibrium's average rate sits inside the Price of
  Anarchy interval of the welfare optimum (found by brute force);
* **Theorems 6-7** — the Phase 2 greedy's latency reduction achieves at
  least the guaranteed fraction of the optimal reduction (brute force);

and on a paper-scale instance it prints the bound values that hold a priori.

Run:  python examples/theory_verification.py
"""

import numpy as np

from repro.core.bounds import (
    greedy_approximation_factor,
    theorem4_iteration_bound,
    theorem5_poa_interval,
    theory_report,
)
from repro.core.brute_force import optimal_allocation, optimal_delivery
from repro.core.delivery import greedy_delivery
from repro.core.game import IddeUGame
from repro.core.instance import IDDEInstance
from repro.core.objectives import average_data_rate, average_delivery_latency_ms
from repro.core.profiles import DeliveryProfile
from repro.topology.graph import build_topology
from repro.types import Scenario


def micro_instance(seed: int) -> IDDEInstance:
    rng = np.random.default_rng(seed)
    n, m, k = 3, 3, 2
    server_xy = rng.uniform(0, 300, size=(n, 2))
    user_xy = rng.uniform(0, 300, size=(m, 2))
    scenario = Scenario(
        server_xy=server_xy,
        radius=np.full(n, 600.0),
        storage=rng.uniform(40, 120, size=n),
        channels=np.full(n, 2, dtype=np.int64),
        user_xy=user_xy,
        power=rng.uniform(1, 5, size=m),
        rmax=rng.uniform(180, 220, size=m),
        sizes=np.array([30.0, 60.0]),
        requests=np.eye(m, k, dtype=bool) | (rng.random((m, k)) < 0.4),
    )
    return IDDEInstance(scenario, build_topology(n, 2.0, seed))


def main() -> None:
    print("=== Exact certification on enumerable micro-instances ===")
    for seed in range(3):
        instance = micro_instance(seed)
        game = IddeUGame(instance)
        result = game.run(rng=0)

        y_bound = theorem4_iteration_bound(instance)
        r_nash = average_data_rate(instance, result.profile)
        _, r_opt = optimal_allocation(instance)
        lo, hi = theorem5_poa_interval(instance, result.profile)
        poa = r_nash / r_opt if r_opt else 1.0

        empty = DeliveryProfile.empty(instance.n_servers, instance.n_data)
        phi = average_delivery_latency_ms(instance, result.profile, empty)
        _, l_opt = optimal_delivery(instance, result.profile)
        greedy = greedy_delivery(instance, result.profile)
        l_greedy = average_delivery_latency_ms(
            instance, result.profile, greedy.profile
        )
        factor = greedy_approximation_factor(instance)
        achieved = (phi - l_greedy) / (phi - l_opt) if phi > l_opt else 1.0

        print(f"-- micro instance #{seed}")
        print(f"   Theorem 4: moves {result.moves} <= bound {y_bound:.1f}  "
              f"{'OK' if result.moves <= y_bound else 'VIOLATED'}")
        print(f"   Theorem 5: PoA {poa:.4f} in [{lo:.4f}, {hi:.1f}]  "
              f"{'OK' if lo - 1e-9 <= poa <= hi + 1e-9 else 'VIOLATED'}")
        print(f"   Theorem 6/7: greedy achieves {achieved:.2%} of the optimal "
              f"latency reduction (guarantee: {factor:.2%})  "
              f"{'OK' if achieved >= factor - 1e-9 else 'VIOLATED'}")

    print()
    print("=== A-priori bounds at paper scale (N=30, M=200, K=5) ===")
    instance = IDDEInstance.generate(n=30, m=200, k=5, density=1.0, seed=0)
    report = theory_report(instance)
    print(f"  Theorem 4 iteration bound: {report.iteration_bound:.3e}")
    print(f"  Theorem 5 PoA interval: [{report.poa_interval[0]:.4f}, 1.0]")
    print(f"  Theorems 6-7 greedy factor: {report.greedy_factor:.4f} "
          f"(worst case (e-1)/2e = {0.3161:.4f})")
    print(f"  cloud-only average latency phi: {report.cloud_only_latency_ms:.1f} ms")


if __name__ == "__main__":
    main()
