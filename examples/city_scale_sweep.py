#!/usr/bin/env python
"""City-scale sweep: a reduced Set #2 (vary M) run through the experiment
harness with process-pool parallelism.

Demonstrates the full evaluation pipeline a downstream user would run:
Table 2 settings -> parallel repeated trials -> aggregated figure series ->
markdown report — the exact machinery that regenerates the paper's
Figs. 3-7 (see ``benchmarks/``), here at a laptop-friendly scale.

Run:  python examples/city_scale_sweep.py [--reps N] [--workers W]
"""

import argparse

from repro.experiments.figures import shape_checks
from repro.experiments.report import (
    render_advantage_markdown,
    render_sweep_markdown,
)
from repro.experiments.settings import SweepSettings
from repro.experiments.sweep import run_sweep
from repro.parallel import ParallelConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=3, help="repetitions per point")
    parser.add_argument("--workers", type=int, default=None, help="worker processes")
    parser.add_argument(
        "--ip-budget", type=float, default=1.0, help="IDDE-IP seconds per trial"
    )
    args = parser.parse_args()

    settings = SweepSettings("city-set2", "m", (100, 175, 250, 325))
    print(
        f"sweeping {settings.varying} over {settings.values} "
        f"({args.reps} reps per point, all 5 approaches)..."
    )
    result = run_sweep(
        settings,
        reps=args.reps,
        seed=11,
        ip_time_budget_s=args.ip_budget,
        parallel=ParallelConfig(n_workers=args.workers),
    )

    for metric in ("r_avg", "l_avg_ms", "time_s"):
        print(render_sweep_markdown(result, metric))
    print(render_advantage_markdown(result))
    checks = shape_checks(result)
    print(f"shape checks (paper §4.5 claims): {checks}")
    if all(checks.values()):
        print("all headline orderings reproduced ✓")


if __name__ == "__main__":
    main()
