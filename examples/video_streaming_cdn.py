#!/usr/bin/env python
"""Edge CDN scenario: a video vendor serving a city-centre lunch rush.

The paper's motivating workload (§1) is an app vendor — think a video
platform — that has reserved storage on the edge servers of a CBD and must
deliver popular content to a surge of users without wrecking their data
rates.  This example builds that scenario on the EUA-style pool:

* 35 edge servers drawn from the 125-site pool;
* 260 users concentrated in the coverage union (the lunch-hour crowd);
* an 8-title catalogue with strongly skewed (Zipf 1.1) popularity and
  2 requests per user (people browse);

then formulates strategies with every approach from the paper and prints
the comparison table, plus a breakdown of where IDDE-G's latency comes
from (local hit / edge transfer / cloud fetch).

Run:  python examples/video_streaming_cdn.py
"""

import numpy as np

from repro import IDDEInstance, default_solvers
from repro.config import ScenarioConfig, WorkloadConfig
from repro.core.objectives import per_user_latencies


def build_instance() -> IDDEInstance:
    workload = WorkloadConfig(
        data_sizes=(30.0, 60.0, 90.0),
        requests_per_user=2,
        zipf_exponent=1.1,
    )
    return IDDEInstance.generate(
        n=35,
        m=260,
        k=8,
        density=1.6,
        seed=2024,
        config=ScenarioConfig(workload=workload),
    )


def latency_breakdown(instance, strategy) -> dict[str, float]:
    """Fractions of requests served locally, via edge links, or from cloud."""
    lat = per_user_latencies(instance, strategy.allocation, strategy.delivery)
    zeta = instance.scenario.requests
    sizes = instance.scenario.sizes
    cloud = instance.latency_model.cloud_cost
    cloud_lat = sizes[None, :] * cloud
    requested = zeta
    total = requested.sum()
    local = ((lat <= 1e-12) & requested).sum()
    from_cloud = (np.isclose(lat, cloud_lat) & requested & (lat > 1e-12)).sum()
    via_edge = total - local - from_cloud
    return {
        "local": local / total,
        "edge": via_edge / total,
        "cloud": from_cloud / total,
    }


def main() -> None:
    instance = build_instance()
    print(f"scenario: {instance}")
    pop = instance.requests_per_item
    print(f"catalogue popularity (requests per title): {pop.tolist()}")
    print()

    print(f"{'approach':>8} | {'R_avg (MB/s)':>12} | {'L_avg (ms)':>10} | "
          f"{'time (s)':>8} | hit profile (local/edge/cloud)")
    print("-" * 78)
    for solver in default_solvers(ip_time_budget=3.0):
        strategy = solver.solve(instance, rng=2024)
        bd = latency_breakdown(instance, strategy)
        print(
            f"{strategy.solver:>8} | {strategy.r_avg:12.2f} | "
            f"{strategy.l_avg_ms:10.2f} | {strategy.wall_time_s:8.3f} | "
            f"{bd['local']:.0%} / {bd['edge']:.0%} / {bd['cloud']:.0%}"
        )
    print()
    print("Reading the table: IDDE-G should show the highest average data")
    print("rate and the lowest delivery latency, achieved by serving most")
    print("requests from the user's own edge server or a one-hop neighbour.")


if __name__ == "__main__":
    main()
